"""Iterative-compilation training corpus for COBAYN.

For each training kernel, every one of the 128 flag combinations is
evaluated (compile + run on the simulated machine at a fixed reference
operating point) and the fastest fraction become *positive examples*:
the configurations whose distribution the Bayesian network learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.core import EvaluationEngine
from repro.engine.model import DesignPoint
from repro.gcc.compiler import Compiler
from repro.gcc.flags import ALL_FLAGS, Flag, FlagConfiguration, OptLevel, cobayn_space
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.milepost.features import FeatureVector
from repro.polybench.apps.base import BenchmarkApp

#: Reference operating point for iterative compilation (all physical
#: cores of one socket pair, close binding) — flag effects are ranked
#: at a fixed parallel setting, as COBAYN does on the real machine.
REFERENCE_THREADS = 16
REFERENCE_BINDING = BindingPolicy.CLOSE


def flag_assignment(config: FlagConfiguration) -> Dict[str, int]:
    """Encode a flag configuration as BN variables.

    ``level`` is 0 for -O2 and 1 for -O3 (the COBAYN space bases);
    each transformation flag is its own binary variable.
    """
    row: Dict[str, int] = {"level": 1 if config.level is OptLevel.O3 else 0}
    for flag in ALL_FLAGS:
        row[flag.value] = 1 if config.has(flag) else 0
    return row


def assignment_to_config(row: Mapping[str, int]) -> FlagConfiguration:
    """Inverse of :func:`flag_assignment`."""
    level = OptLevel.O3 if row["level"] else OptLevel.O2
    flags = frozenset(flag for flag in ALL_FLAGS if row.get(flag.value))
    return FlagConfiguration(level=level, flags=flags)


@dataclass
class KernelExamples:
    """Per-kernel iterative-compilation outcome."""

    kernel: str
    features: FeatureVector
    timings: List[Tuple[FlagConfiguration, float]]
    good_configs: List[FlagConfiguration]


@dataclass
class TrainingCorpus:
    """Positive examples plus the feature vectors they came from."""

    examples: List[KernelExamples] = field(default_factory=list)

    @property
    def kernels(self) -> List[str]:
        return [example.kernel for example in self.examples]

    def feature_vectors(self) -> List[FeatureVector]:
        return [example.features for example in self.examples]

    def rows(self, discretizer) -> List[Dict[str, int]]:
        """BN training rows: feature bins + flag variables per good config."""
        rows: List[Dict[str, int]] = []
        for example in self.examples:
            feature_bins = discretizer.transform(example.features)
            for config in example.good_configs:
                row = dict(feature_bins)
                row.update(flag_assignment(config))
                rows.append(row)
        return rows


def reference_points(
    configs: Sequence[FlagConfiguration],
    max_threads: Optional[int] = None,
) -> List[DesignPoint]:
    """The iterative-compilation design points: every configuration at
    the fixed reference operating point.

    ``max_threads`` caps the reference team at the machine's capability
    (a big.LITTLE part may have fewer than 16 logical CPUs); the
    paper's testbed is unaffected.
    """
    threads = (
        REFERENCE_THREADS
        if max_threads is None
        else min(REFERENCE_THREADS, max_threads)
    )
    return [
        DesignPoint(compiler=config, threads=threads, binding=REFERENCE_BINDING)
        for config in configs
    ]


def evaluate_configuration(
    app: BenchmarkApp,
    config: FlagConfiguration,
    compiler: Compiler,
    executor: MachineExecutor,
    omp: OpenMPRuntime,
    engine: Optional[EvaluationEngine] = None,
) -> float:
    """Noise-free execution time of ``app`` under ``config`` at the
    reference operating point."""
    engine = engine or EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
    profile = engine.profile(app)
    (sample,) = engine.evaluate(
        profile,
        reference_points([config], max_threads=engine.machine.logical_cpus),
        repetitions=1,
        noisy=False,
    )
    return sample.times[0]


def build_corpus(
    apps: Sequence[BenchmarkApp],
    compiler: Compiler,
    executor: MachineExecutor,
    omp: OpenMPRuntime,
    good_fraction: float = 0.1,
    engine: Optional[EvaluationEngine] = None,
    plans: Optional[Mapping[str, "object"]] = None,
) -> TrainingCorpus:
    """Run iterative compilation for every app and keep the best combos.

    ``good_fraction`` of the 128-point space (at least 4 combos) is
    labelled positive per kernel.  ``engine`` shares the profile and
    compile caches with the rest of a toolflow build; when omitted a
    private engine wraps the given components.

    ``plans`` (app name → :class:`repro.analysis.cost.PrunePlan`) is
    **opt-in**: when an app has a plan, configurations the flag-safety
    verdict rules out (e.g. fast-math versions of a reduction kernel)
    are skipped — they are never among the *fastest* candidates the
    corpus keeps, but skipping them changes the evaluated space, so
    committed corpora must be rebuilt deliberately, never implicitly.
    """
    if not 0.0 < good_fraction <= 1.0:
        raise ValueError("good_fraction must be in (0, 1]")
    engine = engine or EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
    tracer = engine.obs.tracer
    space = cobayn_space()
    corpus = TrainingCorpus()
    for app in apps:
        app_space = list(space)
        plan = plans.get(app.name) if plans else None
        if plan is not None:
            excluded = set(plan.excluded_config_labels(space))
            if excluded:
                app_space = [c for c in space if c.label not in excluded]
        points = reference_points(
            app_space, max_threads=engine.machine.logical_cpus
        )
        with tracer.span("cobayn.iterative", app=app.name, configs=len(points)):
            profile = engine.profile(app)
            features = engine.features(app)
            samples = engine.evaluate(profile, points, repetitions=1, noisy=False)
        timings = [
            (config, sample.times[0]) for config, sample in zip(app_space, samples)
        ]
        timings.sort(key=lambda item: item[1])
        keep = max(4, int(round(len(app_space) * good_fraction)))
        good = [config for config, _ in timings[:keep]]
        corpus.examples.append(
            KernelExamples(
                kernel=app.name,
                features=features,
                timings=timings,
                good_configs=good,
            )
        )
    return corpus
