"""The COBAYN autotuner: train on a corpus, predict flag combinations.

Training learns a discrete Bayesian network over the discretized
Milepost features (evidence nodes) and the flag variables, from the
positive examples of the iterative-compilation corpus.  Prediction
conditions the network on a new kernel's feature bins and ranks every
one of the 128 combinations by posterior probability; the top ``k``
(4 in the paper) become the CF1..CF4 custom configurations of the
SOCRATES autotuning space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cobayn.bn import DiscreteBayesianNetwork, NodeSpec, learn_structure
from repro.cobayn.corpus import TrainingCorpus, assignment_to_config, flag_assignment
from repro.cobayn.discretize import Discretizer
from repro.gcc.flags import ALL_FLAGS, FlagConfiguration, cobayn_space
from repro.milepost.features import FeatureVector


@dataclass
class CobaynPrediction:
    """Ranked flag configurations for one kernel."""

    kernel: str
    ranked: List[Tuple[FlagConfiguration, float]]  # (config, posterior)

    def top(self, k: int = 4) -> List[FlagConfiguration]:
        return [config for config, _ in self.ranked[:k]]


class CobaynAutotuner:
    """Bayesian-network compiler autotuner."""

    def __init__(self, bins: int = 3, top_features: int = 6, max_parents: int = 1) -> None:
        """``max_parents=1`` keeps every CPT conditioned on a single
        variable: with only eleven training kernels, multi-parent rows
        are frequently unseen at prediction time and collapse to the
        Laplace uniform, hurting generalization (leave-one-out rank of
        the predicted combos degrades ~5x with two parents)."""
        self._bins = bins
        self._top_features = top_features
        self._max_parents = max_parents
        self._discretizer: Optional[Discretizer] = None
        self._network: Optional[DiscreteBayesianNetwork] = None

    @property
    def is_trained(self) -> bool:
        return self._network is not None

    @property
    def network(self) -> DiscreteBayesianNetwork:
        if self._network is None:
            raise RuntimeError("autotuner is not trained")
        return self._network

    @property
    def discretizer(self) -> Discretizer:
        if self._discretizer is None:
            raise RuntimeError("autotuner is not trained")
        return self._discretizer

    def train(self, corpus: TrainingCorpus) -> None:
        """Fit discretizer + network structure + parameters on ``corpus``."""
        if not corpus.examples:
            raise ValueError("empty training corpus")
        discretizer = Discretizer.fit(
            corpus.feature_vectors(), bins=self._bins, top_k=self._top_features
        )
        rows = corpus.rows(discretizer)
        nodes = [
            NodeSpec(name=name, cardinality=discretizer.cardinality(name))
            for name in discretizer.feature_names
        ]
        nodes.append(NodeSpec(name="level", cardinality=2))
        nodes.extend(NodeSpec(name=flag.value, cardinality=2) for flag in ALL_FLAGS)
        # feature nodes are pure evidence: they never receive arcs
        network = learn_structure(
            nodes,
            rows,
            max_parents=self._max_parents,
            forbidden_children=set(discretizer.feature_names),
        )
        self._discretizer = discretizer
        self._network = network

    def predict(self, features: FeatureVector, k: int = 4) -> CobaynPrediction:
        """Rank the 128 combinations by posterior given ``features``."""
        network = self.network
        evidence = self.discretizer.transform(features)
        scored: List[Tuple[FlagConfiguration, float]] = []
        for config in cobayn_space():
            query = flag_assignment(config)
            posterior = network.posterior(query, evidence)
            scored.append((config, posterior))
        scored.sort(key=lambda item: (-item[1], item[0].label))
        return CobaynPrediction(kernel=features.kernel, ranked=scored[: max(k, len(scored))])

    def predict_top(self, features: FeatureVector, k: int = 4) -> List[FlagConfiguration]:
        """Convenience: just the top-``k`` configurations."""
        return self.predict(features, k).top(k)
