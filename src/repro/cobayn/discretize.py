"""Feature discretization for the Bayesian network.

COBAYN normalizes and reduces the Milepost feature space before
learning.  Here each selected feature is binned into ``bins`` quantile
levels computed on the training corpus; feature *selection* keeps the
most informative features by variance across training kernels (highly
degenerate features carry no signal for so few kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.milepost.features import FEATURE_NAMES, FeatureVector


@dataclass
class Discretizer:
    """Quantile-bin feature transformer fitted on training vectors."""

    feature_names: Tuple[str, ...]
    edges: Mapping[str, np.ndarray]
    bins: int

    @classmethod
    def fit(
        cls,
        vectors: Sequence[FeatureVector],
        bins: int = 3,
        top_k: int = 8,
    ) -> "Discretizer":
        """Select the ``top_k`` highest-signal features and fit bin edges.

        Candidate features are binned at quantile edges (after log1p
        compression, since raw counts span orders of magnitude) and
        scored by the *entropy* of the resulting level distribution: a
        feature whose bins split the training kernels evenly carries
        the most discrimination power, while sparse or constant
        features collapse into one level and score zero.
        """
        if not vectors:
            raise ValueError("cannot fit a discretizer on no vectors")
        if bins < 2:
            raise ValueError("bins must be >= 2")
        matrix = np.log1p(
            np.array([vector.as_array() for vector in vectors], dtype=float)
        )
        candidate_edges: List[np.ndarray] = []
        entropies: List[float] = []
        for column in range(matrix.shape[1]):
            quantiles = np.quantile(
                matrix[:, column], np.linspace(0, 1, bins + 1)[1:-1]
            )
            edges_column = np.unique(quantiles)
            levels = np.searchsorted(edges_column, matrix[:, column], side="right")
            candidate_edges.append(edges_column)
            entropies.append(_entropy(levels))
        ranked = np.argsort(-np.array(entropies), kind="stable")
        chosen = sorted(int(index) for index in ranked[:top_k])
        names = tuple(FEATURE_NAMES[index] for index in chosen)
        edges: Dict[str, np.ndarray] = {
            name: candidate_edges[index] for index, name in zip(chosen, names)
        }
        return cls(feature_names=names, edges=edges, bins=bins)

    def transform(self, vector: FeatureVector) -> Dict[str, int]:
        """Bin one feature vector into ``{feature: level}``."""
        result: Dict[str, int] = {}
        for name in self.feature_names:
            value = np.log1p(vector[name])
            result[name] = int(np.searchsorted(self.edges[name], value, side="right"))
        return result

    def cardinality(self, name: str) -> int:
        """Number of levels feature ``name`` can take after binning."""
        return len(self.edges[name]) + 1


def _entropy(levels: np.ndarray) -> float:
    """Shannon entropy (nats) of a discrete level assignment."""
    _, counts = np.unique(levels, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log(probabilities)).sum())
