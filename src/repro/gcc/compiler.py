"""The analytical compiler: profile + flags -> compiled kernel costs.

The output of :meth:`Compiler.compile` is a :class:`CompiledKernel`
holding everything the machine model needs: per-invocation cycle
counts split into serial and parallel shares, the memory profile, and
power/code-size factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.gcc.flags import FlagConfiguration
from repro.gcc.passes import CodegenEffect, build_effect
from repro.polybench.workload import WorkloadProfile


@dataclass(frozen=True)
class CompiledKernel:
    """Cost model of one kernel compiled under one flag configuration.

    Cycle counts are per kernel invocation on ONE core; the machine
    model divides the parallel share across the thread team.
    """

    profile: WorkloadProfile
    config: FlagConfiguration
    total_cycles: float
    serial_cycles: float
    parallel_cycles: float
    vector_width: float
    code_size: float
    power_intensity: float

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def memory_bound_share(self) -> float:
        """Rough fraction of cycles spent on memory operations."""
        ops = self.profile.loads + self.profile.stores
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, ops * 0.55 / self.total_cycles)


class Compiler:
    """Compile workload profiles against flag configurations.

    Stateless apart from an internal memoization cache, so a single
    instance can be shared across the whole toolchain.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str, FlagConfiguration], CompiledKernel] = {}

    def compile(
        self, profile: WorkloadProfile, config: FlagConfiguration
    ) -> CompiledKernel:
        """Produce the :class:`CompiledKernel` for ``profile`` x ``config``."""
        key = (profile.name, profile.kernel, config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        effect = build_effect(profile, config)
        kernel = self._lower(profile, config, effect)
        self._cache[key] = kernel
        return kernel

    def _lower(
        self,
        profile: WorkloadProfile,
        config: FlagConfiguration,
        effect: CodegenEffect,
    ) -> CompiledKernel:
        vector = effect.vector_width if effect.vectorizable else 1.0
        # vector code also issues vector loads/stores and, being unrolled
        # by the lane count, executes proportionally less loop control
        fp_cycles = profile.flops / (effect.fp_rate * vector)
        int_cycles = profile.int_ops / (effect.int_rate * (1.0 + (vector - 1.0) * 0.5))
        mem_cycles = (profile.loads + profile.stores) * effect.mem_op_cost / vector
        call_cycles = profile.call_ops * effect.call_cost
        branch_cycles = profile.branch_ops * effect.branch_cost
        # the FP, load/store and integer pipes of an out-of-order core
        # largely overlap: charge the slowest pipe fully and a fraction
        # of the remainder for issue-width contention
        pipes = (fp_cycles, mem_cycles, int_cycles)
        bottleneck = max(pipes)
        overlapped = bottleneck + 0.30 * (sum(pipes) - bottleneck)
        total = overlapped + call_cycles + branch_cycles
        serial = total * (1.0 - profile.parallel_fraction)
        parallel = total * profile.parallel_fraction
        return CompiledKernel(
            profile=profile,
            config=config,
            total_cycles=total,
            serial_cycles=serial,
            parallel_cycles=parallel,
            vector_width=vector,
            code_size=effect.code_size,
            power_intensity=effect.power_intensity,
        )
