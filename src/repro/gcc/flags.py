"""The compiler-flag design space of the paper.

Two sub-spaces are involved:

* the **standard levels** -Os/-O1/-O2/-O3, always part of the SOCRATES
  autotuning space;
* the **COBAYN space**: 128 combinations (a base level in {-O2, -O3}
  crossed with the six transformation flags of Chen et al.), which
  COBAYN prunes down to four custom combinations (CF1..CF4 in the
  paper's Figure 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple


class OptLevel(enum.Enum):
    """GCC standard optimization level."""

    OS = "Os"
    O1 = "O1"
    O2 = "O2"
    O3 = "O3"

    @property
    def gcc_name(self) -> str:
        return f"-{self.value}"


class Flag(enum.Enum):
    """The six transformation flags of the paper (Section II)."""

    UNSAFE_MATH = "funsafe-math-optimizations"
    NO_GUESS_BRANCH_PROBABILITY = "fno-guess-branch-probability"
    NO_IVOPTS = "fno-ivopts"
    NO_TREE_LOOP_OPTIMIZE = "fno-tree-loop-optimize"
    NO_INLINE_FUNCTIONS = "fno-inline-functions"
    UNROLL_ALL_LOOPS = "funroll-all-loops"

    @property
    def gcc_name(self) -> str:
        return f"-{self.value}"

    @property
    def pragma_name(self) -> str:
        """Name used inside ``#pragma GCC optimize("...")``."""
        return self.value[1:]  # strip the 'f'


ALL_FLAGS: Tuple[Flag, ...] = tuple(Flag)

#: Size of the COBAYN compiler space (as in the original COBAYN paper).
COBAYN_SPACE_SIZE = 128


@dataclass(frozen=True)
class FlagConfiguration:
    """One point of the compiler sub-space: a level plus toggled flags."""

    level: OptLevel
    flags: FrozenSet[Flag] = frozenset()

    @property
    def label(self) -> str:
        """Command-line style label, e.g. ``-O2 -fno-ivopts``."""
        parts = [self.level.gcc_name]
        parts.extend(flag.gcc_name for flag in sorted(self.flags, key=lambda f: f.value))
        return " ".join(parts)

    @property
    def pragma_text(self) -> str:
        """GCC function-attribute pragma enabling this configuration.

        Matches the paper's example:
        ``#pragma GCC optimize ("O2,no-inline")``.
        """
        names = [self.level.value]
        names.extend(flag.pragma_name for flag in sorted(self.flags, key=lambda f: f.value))
        return 'GCC optimize ("' + ",".join(names) + '")'

    @property
    def mangled(self) -> str:
        """Identifier-safe suffix for cloned kernel names."""
        parts = [self.level.value]
        parts.extend(
            flag.pragma_name.replace("-", "_")
            for flag in sorted(self.flags, key=lambda f: f.value)
        )
        return "_".join(parts)

    def has(self, flag: Flag) -> bool:
        return flag in self.flags

    def __str__(self) -> str:
        return self.label


def standard_levels() -> List[FlagConfiguration]:
    """The four plain -Os/-O1/-O2/-O3 configurations."""
    return [FlagConfiguration(level=level) for level in OptLevel]


def cobayn_space() -> List[FlagConfiguration]:
    """The 128-point COBAYN compiler space: {O2, O3} x 2^6 flags."""
    space: List[FlagConfiguration] = []
    for level in (OptLevel.O2, OptLevel.O3):
        for mask in range(2 ** len(ALL_FLAGS)):
            flags = frozenset(
                flag for index, flag in enumerate(ALL_FLAGS) if mask & (1 << index)
            )
            space.append(FlagConfiguration(level=level, flags=flags))
    assert len(space) == COBAYN_SPACE_SIZE
    return space


def parse_label(label: str) -> FlagConfiguration:
    """Inverse of :attr:`FlagConfiguration.label`.

    Accepts e.g. ``"-O3 -fno-ivopts -funroll-all-loops"``.
    """
    level: OptLevel | None = None
    flags: set = set()
    for token in label.split():
        name = token.lstrip("-")
        matched = False
        for candidate in OptLevel:
            if candidate.value == name:
                level = candidate
                matched = True
                break
        if matched:
            continue
        for flag in Flag:
            if flag.value == name:
                flags.add(flag)
                matched = True
                break
        if not matched:
            raise ValueError(f"unknown flag token {token!r} in {label!r}")
    if level is None:
        raise ValueError(f"no optimization level in {label!r}")
    return FlagConfiguration(level=level, flags=frozenset(flags))


def parse_pragma(text: str) -> FlagConfiguration:
    """Inverse of :attr:`FlagConfiguration.pragma_text`.

    Accepts the text of a ``#pragma GCC optimize ("...")`` line (with
    or without the ``GCC optimize`` prefix) and rebuilds the
    configuration, so a weaved source can be mapped back onto the
    compiler space it was generated from.
    """
    body = text.strip()
    if body.startswith("GCC optimize"):
        body = body[len("GCC optimize") :].strip()
    body = body.strip("()").strip().strip('"')
    level: OptLevel | None = None
    flags: set = set()
    for name in filter(None, (part.strip() for part in body.split(","))):
        matched = False
        for candidate in OptLevel:
            if candidate.value == name:
                level = candidate
                matched = True
                break
        if matched:
            continue
        for flag in Flag:
            if flag.pragma_name == name:
                flags.add(flag)
                matched = True
                break
        if not matched:
            raise ValueError(f"unknown optimize pragma entry {name!r} in {text!r}")
    if level is None:
        raise ValueError(f"no optimization level in pragma {text!r}")
    return FlagConfiguration(level=level, flags=frozenset(flags))


def paper_custom_flags() -> List[FlagConfiguration]:
    """The four COBAYN-suggested combinations reported in the paper.

    Figure 4's caption lists, for 2mm:
      CF1: O3, no-guess-branch-probability, no-ivopts,
           no-tree-loop-optimize, no-inline
      CF2: O2, no-inline, unroll-all-loops
      CF3: O2, unsafe-math-optimizations, no-ivopts,
           no-tree-loop-optimize, unroll-all-loops
      CF4: O2, no-inline
    """
    return [
        FlagConfiguration(
            OptLevel.O3,
            frozenset(
                {
                    Flag.NO_GUESS_BRANCH_PROBABILITY,
                    Flag.NO_IVOPTS,
                    Flag.NO_TREE_LOOP_OPTIMIZE,
                    Flag.NO_INLINE_FUNCTIONS,
                }
            ),
        ),
        FlagConfiguration(
            OptLevel.O2,
            frozenset({Flag.NO_INLINE_FUNCTIONS, Flag.UNROLL_ALL_LOOPS}),
        ),
        FlagConfiguration(
            OptLevel.O2,
            frozenset(
                {
                    Flag.UNSAFE_MATH,
                    Flag.NO_IVOPTS,
                    Flag.NO_TREE_LOOP_OPTIMIZE,
                    Flag.UNROLL_ALL_LOOPS,
                }
            ),
        ),
        FlagConfiguration(OptLevel.O2, frozenset({Flag.NO_INLINE_FUNCTIONS})),
    ]
