"""Per-flag code-generation effect models.

Each model transforms a :class:`CodegenEffect` — the set of
multiplicative cost factors that, together with a kernel's
:class:`~repro.polybench.workload.WorkloadProfile`, determine the cycle
count of the compiled kernel.  The *direction* and *feature dependence*
of every effect follows the published behaviour of the corresponding
GCC pass; magnitudes are calibrated so that the spread between the best
and worst configuration of a kernel lands in the 1.2x-2.5x range
reported by iterative-compilation studies (Chen et al., TACO 2012).

On top of the analytical terms, every (kernel, option) pair receives a
small deterministic *microarchitectural residual* (a +/-4% factor
seeded by hashing the pair).  Real pass interactions are noisier than
any analytical model; the residual reproduces the paper's key
observation that the best flag combination differs per kernel in ways
static reasoning does not predict — which is exactly why COBAYN learns
it from data.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.gcc.flags import Flag, FlagConfiguration, OptLevel
from repro.polybench.workload import WorkloadProfile


@dataclass
class CodegenEffect:
    """Multiplicative cost factors produced by compilation.

    Attributes:
        fp_rate: floating-point operations per cycle per core (scalar).
        int_rate: integer/address operations per cycle per core.
        mem_op_cost: cycles per (cache-resident) load/store.
        call_cost: cycles per residual function call.
        branch_cost: cycles per conditional branch.
        vector_width: SIMD lanes usable on vectorizable loops.
        vectorizable: whether the kernel's hot loops can be vectorized
            under this configuration.
        code_size: relative text-size factor (1.0 = -O2 baseline).
        power_intensity: relative dynamic core power factor.
    """

    fp_rate: float = 1.0
    int_rate: float = 2.0
    mem_op_cost: float = 0.55
    call_cost: float = 12.0
    branch_cost: float = 1.5
    vector_width: float = 1.0
    vectorizable: bool = False
    code_size: float = 1.0
    power_intensity: float = 1.0


def residual(kernel_name: str, option: str, spread: float = 0.04) -> float:
    """Deterministic per-(kernel, option) factor in [1-spread, 1+spread]."""
    digest = hashlib.md5(f"{kernel_name}|{option}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 1.0 + spread * (2.0 * unit - 1.0)


def _is_vector_friendly(profile: WorkloadProfile) -> bool:
    """Hot loops vectorize when there is no loop-carried dependence and
    the innermost body is a straight-line FP computation."""
    return (
        not profile.loop_carried_dependence
        and profile.branch_density < 0.02
        and profile.flops > 0
    )


def apply_level(
    profile: WorkloadProfile, config: FlagConfiguration, effect: CodegenEffect
) -> None:
    """Baseline effect of -Os/-O1/-O2/-O3.

    Rates express how much instruction-level parallelism the generated
    code extracts; -O3 additionally turns on the auto-vectorizer.
    """
    level = config.level
    if level is OptLevel.OS:
        effect.fp_rate = 0.95
        effect.int_rate = 1.9
        effect.code_size = 0.80
        effect.power_intensity = 0.90
    elif level is OptLevel.O1:
        effect.fp_rate = 1.00
        effect.int_rate = 2.0
        effect.code_size = 0.90
        effect.power_intensity = 0.93
    elif level is OptLevel.O2:
        effect.fp_rate = 1.30
        effect.int_rate = 2.6
        effect.code_size = 1.00
        effect.power_intensity = 1.00
    else:  # O3
        effect.fp_rate = 1.38
        effect.int_rate = 2.7
        effect.code_size = 1.25
        effect.power_intensity = 1.10
    effect.fp_rate *= residual(profile.name, level.value)


def apply_unsafe_math(profile: WorkloadProfile, effect: CodegenEffect) -> None:
    """-funsafe-math-optimizations: reassociation and relaxed IEEE rules.

    Big win for division/transcendental-heavy code (reciprocal
    approximations) and it unlocks vectorization of FP reductions that
    strict IEEE ordering would otherwise serialize.
    """
    effect.fp_rate *= 1.0 + 1.2 * profile.div_density + 0.8 * profile.math_call_density
    effect.power_intensity *= 1.03
    effect.fp_rate *= residual(profile.name, "unsafe-math")


def apply_no_guess_branch_probability(
    profile: WorkloadProfile, effect: CodegenEffect
) -> None:
    """-fno-guess-branch-probability: disable static branch prediction.

    Branch-dense code loses the profitable block layout (slower); pure
    loop code is insensitive and occasionally benefits from the more
    compact layout choices.
    """
    effect.branch_cost *= 1.0 + 6.0 * min(0.1, profile.branch_density)
    effect.fp_rate *= 1.0 + 0.015 * (1.0 - min(1.0, 20.0 * profile.branch_density))
    effect.fp_rate *= residual(profile.name, "no-guess-branch-probability")


def apply_no_ivopts(profile: WorkloadProfile, effect: CodegenEffect) -> None:
    """-fno-ivopts: disable induction-variable optimization.

    ivopts reduces address arithmetic in deep loop nests, but its
    aggressive strength reduction raises register pressure; in nests of
    depth >= 3 disabling it can relieve spills (the effect COBAYN's CF1
    exploits on 2mm), while shallow nests lose cheap addressing.
    """
    if profile.max_depth >= 3:
        effect.int_rate *= 1.06
        effect.mem_op_cost *= 0.97
    else:
        effect.int_rate *= 0.90
        effect.mem_op_cost *= 1.04
    effect.int_rate *= residual(profile.name, "no-ivopts")


def apply_no_tree_loop_optimize(profile: WorkloadProfile, effect: CodegenEffect) -> None:
    """-fno-tree-loop-optimize: disable the GIMPLE loop optimizer family.

    Losing loop-invariant motion and related passes costs most when the
    innermost body is large (more invariants to hoist); tiny bodies are
    nearly unaffected and save a little compile-time code churn.
    """
    body_scale = min(1.0, profile.innermost_body_ops / 24.0)
    effect.fp_rate *= 1.0 - 0.12 * body_scale
    effect.int_rate *= 1.0 - 0.10 * body_scale
    if profile.loop_carried_dependence:
        # dependence-limited kernels were not profiting from the passes
        effect.fp_rate *= 1.04
    effect.fp_rate *= residual(profile.name, "no-tree-loop-optimize")


def apply_no_inline_functions(profile: WorkloadProfile, effect: CodegenEffect) -> None:
    """-fno-inline-functions: keep considered-for-inlining calls as calls.

    Call-dense kernels (nussinov's max/match helpers) pay the full call
    overhead; call-free kernels get a marginally better i-cache
    footprint.
    """
    if profile.call_density > 0:
        effect.call_cost *= 2.2
        effect.fp_rate *= 1.0 - 0.5 * min(0.15, profile.call_density)
    else:
        effect.fp_rate *= 1.01
    effect.code_size *= 0.92
    effect.fp_rate *= residual(profile.name, "no-inline-functions")


def apply_unroll_all_loops(profile: WorkloadProfile, effect: CodegenEffect) -> None:
    """-funroll-all-loops: unroll even loops with unknown trip counts.

    Small, high-trip innermost bodies gain from amortized loop control
    and better scheduling; big bodies blow the i-cache and lose.
    """
    small_body_gain = 0.22 * math.exp(-profile.innermost_body_ops / 12.0)
    big_body_loss = 0.10 * min(1.0, max(0.0, profile.innermost_body_ops - 24.0) / 24.0)
    if profile.innermost_trip >= 32.0:
        effect.fp_rate *= 1.0 + small_body_gain - big_body_loss
        effect.int_rate *= 1.12  # loop-control overhead amortized
    else:
        effect.fp_rate *= 0.99
    effect.code_size *= 1.45
    effect.power_intensity *= 1.04
    effect.fp_rate *= residual(profile.name, "unroll-all-loops")


_FLAG_MODELS: Dict[Flag, Callable[[WorkloadProfile, CodegenEffect], None]] = {
    Flag.UNSAFE_MATH: apply_unsafe_math,
    Flag.NO_GUESS_BRANCH_PROBABILITY: apply_no_guess_branch_probability,
    Flag.NO_IVOPTS: apply_no_ivopts,
    Flag.NO_TREE_LOOP_OPTIMIZE: apply_no_tree_loop_optimize,
    Flag.NO_INLINE_FUNCTIONS: apply_no_inline_functions,
    Flag.UNROLL_ALL_LOOPS: apply_unroll_all_loops,
}

#: Order in which GCC applies the modelled passes (fixed, documented so
#: the effect composition is deterministic).
PASS_ORDER: List[Flag] = [
    Flag.UNSAFE_MATH,
    Flag.NO_GUESS_BRANCH_PROBABILITY,
    Flag.NO_IVOPTS,
    Flag.NO_TREE_LOOP_OPTIMIZE,
    Flag.NO_INLINE_FUNCTIONS,
    Flag.UNROLL_ALL_LOOPS,
]


def finalize_vectorization(
    profile: WorkloadProfile, config: FlagConfiguration, effect: CodegenEffect
) -> None:
    """Decide whether the hot loops vectorize under this configuration.

    GCC only runs the auto-vectorizer at -O3 (``-ftree-vectorize``), and
    it refuses floating-point *reduction* loops (2mm's ``tmp[i][j] +=``)
    unless ``-funsafe-math-optimizations`` permits reassociation.  This
    interaction is the single largest source of per-kernel flag
    diversity on Polybench, and the reason COBAYN's learned custom
    combinations beat the plain standard levels.
    """
    if config.level is not OptLevel.O3:
        return
    if not _is_vector_friendly(profile):
        return
    if profile.reduction_innermost and not config.has(Flag.UNSAFE_MATH):
        return
    effect.vectorizable = True
    effect.vector_width = 4.0  # AVX2 lanes on doubles


def build_effect(profile: WorkloadProfile, config: FlagConfiguration) -> CodegenEffect:
    """Compose the level and flag models into one :class:`CodegenEffect`."""
    effect = CodegenEffect()
    apply_level(profile, config, effect)
    for flag in PASS_ORDER:
        if config.has(flag):
            _FLAG_MODELS[flag](profile, effect)
    finalize_vectorization(profile, config, effect)
    return effect
