"""Analytical GCC model: flag space, pass effects, compiled artifacts.

SOCRATES' compiler knob (paper Section II) is a combination of the four
standard optimization levels -Os/-O1/-O2/-O3 plus six transformation
flags taken from Chen et al.'s "Deconstructing iterative optimization":
``-funsafe-math-optimizations``, ``-fno-guess-branch-probability``,
``-fno-ivopts``, ``-fno-tree-loop-optimize``,
``-fno-inline-functions`` and ``-funroll-all-loops``.

There is no GCC in this environment, so :mod:`repro.gcc.compiler`
replaces code generation with an analytical model: each flag applies a
feature-dependent transformation to the kernel's
:class:`~repro.polybench.workload.WorkloadProfile`-derived cost terms
(see :mod:`repro.gcc.passes` for the per-pass rationale).
"""

from repro.gcc.compiler import CompiledKernel, Compiler
from repro.gcc.flags import (
    COBAYN_SPACE_SIZE,
    Flag,
    FlagConfiguration,
    OptLevel,
    cobayn_space,
    standard_levels,
)

__all__ = [
    "COBAYN_SPACE_SIZE",
    "CompiledKernel",
    "Compiler",
    "Flag",
    "FlagConfiguration",
    "OptLevel",
    "cobayn_space",
    "standard_levels",
]
