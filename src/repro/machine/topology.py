"""Hardware topology of the simulated NUMA platform."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LogicalCpu:
    """One hardware thread: (socket, core, hw_thread) coordinates."""

    socket: int
    core: int
    hw_thread: int

    @property
    def place_id(self) -> int:
        """Index of this CPU's *core place* under ``OMP_PLACES=cores``."""
        return self.socket * 10_000 + self.core


@dataclass(frozen=True)
class Machine:
    """A two-level NUMA machine with SMT cores.

    The defaults (see :func:`default_machine`) model the paper's
    testbed: 2x Xeon E5-2630 v3 (Haswell-EP, 8 cores @ 2.4 GHz, 20 MB
    L3, 4-channel DDR4-1866 => ~59 GB/s per socket).
    """

    sockets: int = 2
    cores_per_socket: int = 8
    threads_per_core: int = 2
    frequency_hz: float = 2.4e9
    llc_bytes_per_socket: float = 20e6
    bandwidth_per_socket: float = 55e9
    numa_remote_factor: float = 0.62  # remote-socket effective bandwidth share
    smt_speedup: float = 0.28  # extra throughput from the 2nd hw thread

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def logical_cpus(self) -> int:
        return self.physical_cores * self.threads_per_core

    def cpus(self) -> List[LogicalCpu]:
        """All logical CPUs, ordered socket-major then core then SMT."""
        result: List[LogicalCpu] = []
        for socket in range(self.sockets):
            for core in range(self.cores_per_socket):
                for hw_thread in range(self.threads_per_core):
                    result.append(LogicalCpu(socket, core, hw_thread))
        return result

    def core_places(self) -> List[Tuple[int, int]]:
        """The OMP_PLACES=cores place list: (socket, core) pairs.

        Places are enumerated socket-major, matching how libgomp sees a
        machine whose logical CPUs are numbered socket-by-socket.
        """
        return [
            (socket, core)
            for socket in range(self.sockets)
            for core in range(self.cores_per_socket)
        ]


def default_machine() -> Machine:
    """The paper's platform: 2x Xeon E5-2630 v3, 32 logical CPUs."""
    return Machine()
