"""Hardware topology of the simulated platform.

A :class:`Machine` is an ordered list of :class:`Cluster`\\ s — groups
of identical cores sharing a last-level cache, a memory interface and
a power envelope.  Each cluster occupies one socket / NUMA position in
the place enumeration.  The paper's homogeneous testbed (2x Xeon
E5-2630 v3) is the degenerate case of two identical ``xeon`` clusters;
asymmetric big.LITTLE parts (see :mod:`repro.machine.registry`) mix
clusters with different core counts, clocks, roofline terms and DVFS
state tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ClusterPower:
    """Per-cluster power envelope (watts), consumed by
    :class:`~repro.machine.power.PowerModel`.

    When a cluster carries no envelope the model's own calibrated Xeon
    constants apply, so the default machine's arithmetic is untouched.
    """

    uncore_w: float = 13.0
    idle_core_w: float = 0.75
    active_core_w: float = 4.6
    smt_thread_w: float = 0.65
    dram_max_w: float = 9.0
    #: dynamic power roughly follows f^power_exponent (f V^2 with V ~ f)
    power_exponent: float = 1.9


@dataclass(frozen=True)
class Cluster:
    """One group of identical cores (a Xeon socket, a P- or E-cluster).

    ``dvfs_states`` lists the available frequency steps (Hz).  An empty
    table means the cluster runs at its fixed nominal clock — how the
    default machine folds turbo effects into calibrated constants.
    """

    name: str = "xeon"
    cores: int = 8
    threads_per_core: int = 2
    frequency_hz: float = 2.4e9
    llc_bytes: float = 20e6
    bandwidth_bytes_s: float = 55e9
    per_thread_bandwidth: float = 13e9
    smt_speedup: float = 0.28  # extra throughput from the 2nd hw thread
    dvfs_states: Tuple[float, ...] = ()
    power: Optional[ClusterPower] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cluster {self.name!r} needs >= 1 core")
        if self.threads_per_core < 1:
            raise ValueError(f"cluster {self.name!r} needs >= 1 thread per core")
        if self.frequency_hz <= 0:
            raise ValueError(f"cluster {self.name!r} needs a positive clock")
        if any(state <= 0 for state in self.dvfs_states):
            raise ValueError(f"cluster {self.name!r} has a non-positive DVFS state")
        if self.dvfs_states and tuple(sorted(self.dvfs_states)) != self.dvfs_states:
            raise ValueError(
                f"cluster {self.name!r} DVFS states must be sorted ascending"
            )

    @property
    def logical_cpus(self) -> int:
        return self.cores * self.threads_per_core

    def effective_frequency(self, active_cores: int) -> float:
        """Clock at which this cluster runs ``active_cores`` busy cores.

        With a DVFS table the governor race-to-idles: one busy core gets
        the top state and the clock walks down toward the bottom state
        as the cluster fills up (thermal/power headroom shrinks), snapped
        to the nearest available state below the interpolated target.
        Without a table the cluster runs at its fixed nominal clock.
        """
        if not self.dvfs_states:
            return self.frequency_hz
        low, high = self.dvfs_states[0], self.dvfs_states[-1]
        cores = min(max(active_cores, 1), self.cores)
        fraction = (cores - 1) / (self.cores - 1) if self.cores > 1 else 1.0
        target = high - fraction * (high - low)
        chosen = low
        for state in self.dvfs_states:
            if state <= target + 1e-6:
                chosen = state
        return chosen

    def freq_power_factor(self, active_cores: int) -> float:
        """Dynamic-power multiplier of the DVFS state in effect."""
        if not self.dvfs_states:
            return 1.0
        exponent = self.power.power_exponent if self.power else 1.9
        return (self.effective_frequency(active_cores) / self.frequency_hz) ** exponent


@dataclass(frozen=True)
class LogicalCpu:
    """One hardware thread: (socket, core, hw_thread) coordinates.

    ``place_index`` is the CPU's position in the owning machine's
    enumerated ``OMP_PLACES=cores`` place list (see
    :meth:`Machine.core_places`); it is assigned during enumeration
    rather than derived arithmetically, so place ids stay collision-free
    on machines whose clusters have different core counts.
    """

    socket: int
    core: int
    hw_thread: int
    place_index: int = -1

    @property
    def place_id(self) -> int:
        """Index of this CPU's *core place* under ``OMP_PLACES=cores``."""
        return self.place_index


def _xeon_clusters(
    sockets: int,
    cores_per_socket: int,
    threads_per_core: int,
    frequency_hz: float,
    llc_bytes_per_socket: float,
    bandwidth_per_socket: float,
    smt_speedup: float,
) -> Tuple[Cluster, ...]:
    cluster = Cluster(
        name="xeon",
        cores=cores_per_socket,
        threads_per_core=threads_per_core,
        frequency_hz=frequency_hz,
        llc_bytes=llc_bytes_per_socket,
        bandwidth_bytes_s=bandwidth_per_socket,
        smt_speedup=smt_speedup,
    )
    return (cluster,) * sockets


class Machine:
    """An ordered list of clusters; one cluster per socket/NUMA node.

    The homogeneous-shorthand keywords (``sockets``,
    ``cores_per_socket``, ...) build the classic symmetric machine and
    default to the paper's testbed: 2x Xeon E5-2630 v3 (Haswell-EP, 8
    cores @ 2.4 GHz, 20 MB L3, 4-channel DDR4-1866 => ~59 GB/s per
    socket).  Passing ``clusters`` explicitly describes arbitrary
    (possibly asymmetric) topologies.
    """

    def __init__(
        self,
        clusters: Optional[Sequence[Cluster]] = None,
        *,
        name: Optional[str] = None,
        numa_remote_factor: float = 0.62,
        sockets: Optional[int] = None,
        cores_per_socket: Optional[int] = None,
        threads_per_core: Optional[int] = None,
        frequency_hz: Optional[float] = None,
        llc_bytes_per_socket: Optional[float] = None,
        bandwidth_per_socket: Optional[float] = None,
        smt_speedup: Optional[float] = None,
    ) -> None:
        shorthand = (
            sockets,
            cores_per_socket,
            threads_per_core,
            frequency_hz,
            llc_bytes_per_socket,
            bandwidth_per_socket,
            smt_speedup,
        )
        if clusters is not None:
            if any(value is not None for value in shorthand):
                raise ValueError(
                    "pass either clusters or the homogeneous shorthand "
                    "keywords, not both"
                )
            self._clusters = tuple(clusters)
        else:
            self._clusters = _xeon_clusters(
                sockets=2 if sockets is None else sockets,
                cores_per_socket=8 if cores_per_socket is None else cores_per_socket,
                threads_per_core=2 if threads_per_core is None else threads_per_core,
                frequency_hz=2.4e9 if frequency_hz is None else frequency_hz,
                llc_bytes_per_socket=(
                    20e6 if llc_bytes_per_socket is None else llc_bytes_per_socket
                ),
                bandwidth_per_socket=(
                    55e9 if bandwidth_per_socket is None else bandwidth_per_socket
                ),
                smt_speedup=0.28 if smt_speedup is None else smt_speedup,
            )
        if not self._clusters:
            raise ValueError("a machine needs at least one cluster")
        self._name = name or "custom"
        self._numa_remote_factor = numa_remote_factor
        # the enumerated place list IS the source of place identity
        self._places: Tuple[Tuple[int, int], ...] = tuple(
            (socket, core)
            for socket, cluster in enumerate(self._clusters)
            for core in range(cluster.cores)
        )
        self._place_index: Dict[Tuple[int, int], int] = {
            place: index for index, place in enumerate(self._places)
        }

    # -- identity --------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def clusters(self) -> Tuple[Cluster, ...]:
        return self._clusters

    @property
    def numa_remote_factor(self) -> float:
        """Remote-socket effective bandwidth share."""
        return self._numa_remote_factor

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Machine):
            return NotImplemented
        return (
            self._clusters == other._clusters
            and self._numa_remote_factor == other._numa_remote_factor
        )

    def __hash__(self) -> int:
        return hash((self._clusters, self._numa_remote_factor))

    def __repr__(self) -> str:
        shape = "+".join(
            f"{cluster.cores}x{cluster.name}" for cluster in self._clusters
        )
        return f"Machine({self._name!r}, {shape})"

    # -- cluster views ---------------------------------------------------------

    @property
    def sockets(self) -> int:
        return len(self._clusters)

    def cluster(self, socket: int) -> Cluster:
        """The cluster occupying ``socket``."""
        return self._clusters[socket]

    @property
    def is_homogeneous(self) -> bool:
        """True when every socket hosts an identical cluster (the
        degenerate case whose model arithmetic must stay byte-identical
        to the historical symmetric machine)."""
        return all(cluster == self._clusters[0] for cluster in self._clusters[1:])

    def cluster_names(self) -> Tuple[str, ...]:
        """Distinct cluster type names in enumeration order."""
        names: List[str] = []
        for cluster in self._clusters:
            if cluster.name not in names:
                names.append(cluster.name)
        return tuple(names)

    def cluster_sockets(self, name: str) -> Tuple[int, ...]:
        """Socket indices occupied by cluster type ``name``."""
        sockets = tuple(
            socket
            for socket, cluster in enumerate(self._clusters)
            if cluster.name == name
        )
        if not sockets:
            raise ValueError(
                f"machine {self._name!r} has no cluster named {name!r} "
                f"(known: {', '.join(self.cluster_names())})"
            )
        return sockets

    def cluster_logical_cpus(self, name: str) -> int:
        """Logical CPUs across every socket of cluster type ``name``."""
        return sum(
            self._clusters[socket].logical_cpus
            for socket in self.cluster_sockets(name)
        )

    # -- homogeneous accessors -------------------------------------------------

    def _uniform(self, attribute: str):
        values = {getattr(cluster, attribute) for cluster in self._clusters}
        if len(values) > 1:
            raise ValueError(
                f"machine {self._name!r} is heterogeneous: {attribute} differs "
                f"across clusters; query a specific cluster instead"
            )
        return next(iter(values))

    @property
    def cores_per_socket(self) -> int:
        return self._uniform("cores")

    @property
    def threads_per_core(self) -> int:
        return self._uniform("threads_per_core")

    @property
    def frequency_hz(self) -> float:
        return self._uniform("frequency_hz")

    @property
    def llc_bytes_per_socket(self) -> float:
        return self._uniform("llc_bytes")

    @property
    def bandwidth_per_socket(self) -> float:
        return self._uniform("bandwidth_bytes_s")

    @property
    def smt_speedup(self) -> float:
        return self._uniform("smt_speedup")

    # -- enumeration -----------------------------------------------------------

    @property
    def physical_cores(self) -> int:
        return sum(cluster.cores for cluster in self._clusters)

    @property
    def logical_cpus(self) -> int:
        return sum(cluster.logical_cpus for cluster in self._clusters)

    def cpus(self) -> List[LogicalCpu]:
        """All logical CPUs, ordered socket-major then core then SMT."""
        result: List[LogicalCpu] = []
        for socket, cluster in enumerate(self._clusters):
            for core in range(cluster.cores):
                place_index = self._place_index[(socket, core)]
                for hw_thread in range(cluster.threads_per_core):
                    result.append(
                        LogicalCpu(socket, core, hw_thread, place_index=place_index)
                    )
        return result

    def core_places(self) -> List[Tuple[int, int]]:
        """The OMP_PLACES=cores place list: (socket, core) pairs.

        Places are enumerated socket-major, matching how libgomp sees a
        machine whose logical CPUs are numbered socket-by-socket.
        """
        return list(self._places)

    def place_id(self, socket: int, core: int) -> int:
        """Index of a core place in the enumerated place list."""
        return self._place_index[(socket, core)]

    def cluster_places(self, name: str) -> List[Tuple[int, int]]:
        """The place-list slice belonging to cluster type ``name``."""
        sockets = set(self.cluster_sockets(name))
        return [place for place in self._places if place[0] in sockets]


def default_machine() -> Machine:
    """The paper's platform: 2x Xeon E5-2630 v3, 32 logical CPUs.

    Resolved through the machine registry (``xeon_2s``), so every layer
    that falls back to the default agrees on one shared definition.
    """
    from repro.machine.registry import DEFAULT_MACHINE, get_machine

    return get_machine(DEFAULT_MACHINE)
