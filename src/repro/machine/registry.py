"""The machine registry: named platform definitions.

Every layer that needs a platform resolves it here instead of
instantiating its own — ``--machine <name>`` on the CLI, the toolflow,
the evaluation engine and the bench scenarios all share these
definitions.

* ``xeon_2s`` — the paper's testbed (2x Xeon E5-2630 v3, 32 logical
  CPUs).  This is the default and is bit-for-bit the historical
  homogeneous machine.
* ``xeon_1s`` — a single-socket cut of the same part, handy for
  experiments without NUMA effects.
* ``biglittle_4p4e`` — an asymmetric part in the spirit of Novaes et
  al.: 4 performance cores (high clock, deep DVFS table, expensive
  watts) next to 4 efficiency cores (half the clock at a quarter of
  the active power).  One package: no NUMA bandwidth penalty.
* ``biglittle_8p8e`` — the same clusters doubled (two P sockets, two E
  sockets), so thread teams can straddle a cluster-type boundary.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.machine.topology import Cluster, ClusterPower, Machine

#: Name every implicit machine resolution falls back to.
DEFAULT_MACHINE = "xeon_2s"

_XEON = Cluster(name="xeon")

_P_CLUSTER = Cluster(
    name="P",
    cores=4,
    threads_per_core=1,
    frequency_hz=3.2e9,
    llc_bytes=8e6,
    bandwidth_bytes_s=30e9,
    per_thread_bandwidth=10e9,
    smt_speedup=0.0,
    dvfs_states=(1.2e9, 2.0e9, 2.8e9, 3.2e9),
    power=ClusterPower(
        uncore_w=8.0,
        idle_core_w=0.9,
        active_core_w=6.5,
        smt_thread_w=0.0,
        dram_max_w=6.0,
    ),
)

_E_CLUSTER = Cluster(
    name="E",
    cores=4,
    threads_per_core=1,
    frequency_hz=1.6e9,
    llc_bytes=4e6,
    bandwidth_bytes_s=20e9,
    per_thread_bandwidth=7e9,
    smt_speedup=0.0,
    dvfs_states=(0.8e9, 1.2e9, 1.6e9),
    power=ClusterPower(
        uncore_w=4.0,
        idle_core_w=0.3,
        active_core_w=1.6,
        smt_thread_w=0.0,
        dram_max_w=4.0,
    ),
)


def _xeon_2s() -> Machine:
    return Machine((_XEON, _XEON), name="xeon_2s")


def _xeon_1s() -> Machine:
    return Machine((_XEON,), name="xeon_1s")


def _biglittle_4p4e() -> Machine:
    return Machine(
        (_P_CLUSTER, _E_CLUSTER), name="biglittle_4p4e", numa_remote_factor=1.0
    )


def _biglittle_8p8e() -> Machine:
    return Machine(
        (_P_CLUSTER, _P_CLUSTER, _E_CLUSTER, _E_CLUSTER),
        name="biglittle_8p8e",
        numa_remote_factor=1.0,
    )


_REGISTRY: Dict[str, Callable[[], Machine]] = {
    "xeon_2s": _xeon_2s,
    "xeon_1s": _xeon_1s,
    "biglittle_4p4e": _biglittle_4p4e,
    "biglittle_8p8e": _biglittle_8p8e,
}


def machine_names() -> List[str]:
    """Registered machine names, sorted."""
    return sorted(_REGISTRY)


def get_machine(name: str) -> Machine:
    """The registered machine called ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r} (known: {', '.join(machine_names())})"
        ) from None
    return factory()


def resolve_machine(machine: Union[str, Machine, None]) -> Machine:
    """One central resolution rule for every machine parameter.

    ``None`` means the default platform; a string is looked up in the
    registry; a :class:`Machine` passes through unchanged.
    """
    if machine is None:
        return get_machine(DEFAULT_MACHINE)
    if isinstance(machine, str):
        return get_machine(machine)
    return machine
