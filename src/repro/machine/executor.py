"""Execute compiled kernels on the simulated NUMA machine.

This is the substitute for running a real binary under RAPL: given a
:class:`~repro.gcc.compiler.CompiledKernel` and a
:class:`~repro.machine.openmp.ThreadPlacement`, it produces execution
time, average package power and energy, through a roofline-style model
with NUMA, SMT, fork/join and load-imbalance terms.

Model summary (one kernel invocation):

* serial share runs on one core: ``serial_cycles / f``;
* parallel share is divided by the team's *compute capacity* (one unit
  per core, +28% for a second SMT thread on the same core), degraded by
  static-scheduling imbalance and, for dependence-limited kernels
  (seidel-2d, nussinov), by a sublinear scaling exponent;
* DRAM time is ``traffic / effective bandwidth``; traffic follows a
  working-set vs. LLC capacity model (spread binding doubles both the
  usable LLC and the bandwidth, but remote-socket threads only see
  ``numa_remote_factor`` of their bandwidth because first-touch places
  the data on socket 0);
* compute and memory overlap partially (out-of-order cores prefetch);
* every OpenMP parallel region pays a fork/join cost growing with team
  size, and doubled when the team spans sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gcc.compiler import CompiledKernel
from repro.machine.dvfs import TurboModel
from repro.machine.openmp import BindingPolicy, ThreadPlacement
from repro.machine.power import PowerBreakdown, PowerModel, invocation_energy
from repro.machine.topology import Machine

_PER_THREAD_BANDWIDTH = 13e9  # one thread cannot saturate a socket
_FORK_JOIN_BASE_S = 6e-6
_FORK_JOIN_PER_THREAD_S = 4e-7
_CROSS_SOCKET_SYNC_FACTOR = 1.9
_OVERLAP = 0.30  # fraction of the shorter of compute/memory hidden
_DEPENDENCE_SCALING_EXPONENT = 0.62


@dataclass(frozen=True)
class ExecutionResult:
    """Ground-truth outcome of one simulated kernel invocation."""

    time_s: float
    power_w: float
    energy_j: float

    @property
    def throughput(self) -> float:
        """Kernel invocations per second."""
        return 1.0 / self.time_s

    @property
    def throughput_per_watt_sq(self) -> float:
        """The paper's energy-efficiency rank metric, Thr/W^2."""
        return self.throughput / (self.power_w**2)


class MachineExecutor:
    """Runs compiled kernels on a :class:`Machine` with optional noise."""

    def __init__(
        self,
        machine: Machine,
        power_model: Optional[PowerModel] = None,
        seed: int = 0x50C7,
        time_noise_sigma: float = 0.02,
        power_noise_sigma: float = 0.012,
        turbo: Optional["TurboModel"] = None,
    ) -> None:
        """``turbo`` opts into the explicit DVFS model
        (:class:`repro.machine.dvfs.TurboModel`); by default frequency
        effects stay folded into the calibrated base clock."""
        self._machine = machine
        self._power_model = power_model or PowerModel()
        self._rng = np.random.default_rng(seed)
        self._time_sigma = time_noise_sigma
        self._power_sigma = power_noise_sigma
        self._turbo = turbo

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    def reseed(self, seed: int) -> None:
        """Restart the measurement-noise stream."""
        self._rng = np.random.default_rng(seed)

    # -- public API ----------------------------------------------------------

    def run(
        self, kernel: CompiledKernel, placement: ThreadPlacement, noisy: bool = True
    ) -> ExecutionResult:
        """Simulate one invocation; ``noisy=False`` returns model truth."""
        truth = self.evaluate(kernel, placement)
        if not noisy:
            return truth
        ((time_factor, power_factor),) = self.noise_factors(1)
        time_s = truth.time_s * time_factor
        power_w = truth.power_w * power_factor
        return ExecutionResult(
            time_s=time_s, power_w=power_w, energy_j=invocation_energy(time_s, power_w)
        )

    def noise_factors(self, count: int) -> List[Tuple[float, float]]:
        """Draw ``count`` (time, power) measurement-noise factor pairs.

        Consumes the seeded stream exactly as ``count`` noisy
        :meth:`run` calls would, so a caller (the evaluation engine)
        can separate noise generation from model evaluation without
        perturbing downstream draws.
        """
        return [
            (
                float(self._rng.lognormal(0.0, self._time_sigma)),
                float(self._rng.lognormal(0.0, self._power_sigma)),
            )
            for _ in range(count)
        ]

    def evaluate(
        self, kernel: CompiledKernel, placement: ThreadPlacement
    ) -> ExecutionResult:
        """Noise-free model evaluation of (kernel, placement)."""
        time_s, intensity, utilization, bandwidth_share, freq_power = (
            self._model_terms(kernel, placement)
        )
        power_w = self._power_model.active_power(
            self._machine,
            placement,
            intensity=intensity,
            utilization=utilization,
            bandwidth_share=bandwidth_share,
            freq_power=freq_power,
        )
        return ExecutionResult(
            time_s=time_s,
            power_w=power_w,
            energy_j=invocation_energy(time_s, power_w),
        )

    def breakdown(
        self, kernel: CompiledKernel, placement: ThreadPlacement
    ) -> PowerBreakdown:
        """Noise-free per-socket / per-domain power of one invocation.

        The virtual-RAPL domain meters: the same model terms as
        :meth:`evaluate`, attributed per socket and split into
        core / uncore / DRAM planes.  ``breakdown(...)`` sums back to
        ``evaluate(...).power_w`` to within 1e-9 and consumes no random
        stream, so reading the meters never perturbs a seeded run.
        """
        _, intensity, utilization, bandwidth_share, freq_power = self._model_terms(
            kernel, placement
        )
        return self._power_model.active_breakdown(
            self._machine,
            placement,
            intensity=intensity,
            utilization=utilization,
            bandwidth_share=bandwidth_share,
            freq_power=freq_power,
        )

    def idle_breakdown(self) -> PowerBreakdown:
        """Per-domain power of the idle machine (between invocations)."""
        return self._power_model.idle_breakdown(self._machine)

    def _model_terms(
        self, kernel: CompiledKernel, placement: ThreadPlacement
    ) -> Tuple[float, float, float, float, Optional[Dict[int, float]]]:
        """(time_s, intensity, utilization, bandwidth share, freq power).

        The last element is the per-socket DVFS dynamic-power factor
        for heterogeneous machines, ``None`` on homogeneous ones (where
        frequency effects stay folded into the calibrated constants, or
        come from the opt-in :class:`TurboModel`).
        """
        if self._machine.is_homogeneous:
            return self._homogeneous_model_terms(kernel, placement)
        if self._turbo is not None:
            raise ValueError(
                "TurboModel is the homogeneous-Xeon frequency model; "
                "heterogeneous machines model DVFS through their clusters' "
                "dvfs_states"
            )
        return self._clustered_model_terms(kernel, placement)

    def _homogeneous_model_terms(
        self, kernel: CompiledKernel, placement: ThreadPlacement
    ) -> Tuple[float, float, float, float, None]:
        """The calibrated single-cluster-type model (the paper's Xeon)."""
        machine = self._machine
        profile = kernel.profile
        turbo_power = 1.0
        if self._turbo is not None:
            frequency = self._turbo.frequency(
                machine, placement, vectorized=kernel.vector_width > 1.0
            )
            turbo_power = self._turbo.power_factor(frequency)
        else:
            frequency = machine.frequency_hz

        serial_time = kernel.serial_cycles / frequency

        capacity = self._compute_capacity(placement)
        if profile.loop_carried_dependence:
            capacity = capacity**_DEPENDENCE_SCALING_EXPONENT
        imbalance = self._imbalance(profile, placement)
        parallel_compute = kernel.parallel_cycles / frequency / capacity * imbalance

        traffic = self._dram_traffic(kernel, placement)
        bandwidth = self._effective_bandwidth(placement)
        memory_time = traffic / bandwidth

        body = max(parallel_compute, memory_time) + (1.0 - _OVERLAP) * min(
            parallel_compute, memory_time
        )
        fork_join = self._fork_join(profile.parallel_regions, placement)
        time_s = serial_time + body + fork_join

        utilization = self._utilization(parallel_compute, memory_time)
        bandwidth_share = self._bandwidth_share(traffic, time_s, placement)
        intensity = kernel.power_intensity * self._vector_power(kernel) * turbo_power
        return time_s, intensity, utilization, bandwidth_share, None

    def _clustered_model_terms(
        self, kernel: CompiledKernel, placement: ThreadPlacement
    ) -> Tuple[float, float, float, float, Dict[int, float]]:
        """Per-cluster roofline for heterogeneous machines.

        Every socket contributes capacity at its own cluster's clock
        (the cluster's DVFS governor picks the state for its active-core
        count), LLC slice and bandwidth.  A static-scheduled team that
        straddles clusters of different speed is paced by the slowest
        member — the chunks are equal, the cores are not.
        """
        machine = self._machine
        profile = kernel.profile

        busy_cores: Dict[int, set] = {}
        smt_extra: Dict[Tuple[int, int], int] = {}
        for place in placement.assignments:
            busy_cores.setdefault(place[0], set()).add(place)
            smt_extra[place] = smt_extra.get(place, 0) + 1
        smt_pairs: Dict[int, int] = {}
        for (socket, _core), count in smt_extra.items():
            if count > 1:
                smt_pairs[socket] = smt_pairs.get(socket, 0) + 1

        freqs: Dict[int, float] = {}
        freq_power: Dict[int, float] = {}
        for socket, cores in busy_cores.items():
            cluster = machine.cluster(socket)
            freqs[socket] = cluster.effective_frequency(len(cores))
            freq_power[socket] = cluster.freq_power_factor(len(cores))

        # the serial share runs on (the fastest of) the participating cores
        serial_time = kernel.serial_cycles / max(freqs.values())

        core_eq = 0.0
        capacity_hz = 0.0
        for socket, cores in busy_cores.items():
            cluster = machine.cluster(socket)
            eq = len(cores) + smt_pairs.get(socket, 0) * cluster.smt_speedup
            core_eq += eq
            capacity_hz += eq * freqs[socket]
        mean_freq = capacity_hz / core_eq
        if profile.loop_carried_dependence:
            capacity_hz = core_eq**_DEPENDENCE_SCALING_EXPONENT * mean_freq
        imbalance = self._imbalance(profile, placement)
        if len(freqs) > 1 and placement.num_threads > 1 and profile.parallel_regions:
            # straddling clusters: equal static chunks finish at the
            # slowest cluster's pace
            imbalance *= mean_freq / min(freqs.values())
        parallel_compute = kernel.parallel_cycles / capacity_hz * imbalance

        llc = sum(machine.cluster(socket).llc_bytes for socket in busy_cores)
        working_set = max(profile.working_set_bytes, 1.0)
        naive = profile.naive_bytes
        spill_fraction = max(0.0, (working_set - llc) / working_set)
        traffic = working_set + max(0.0, naive - working_set) * spill_fraction

        per_socket = placement.threads_per_socket()
        bandwidth = 0.0
        for socket, threads in per_socket.items():
            cluster = machine.cluster(socket)
            socket_peak = cluster.bandwidth_bytes_s
            if socket != 0:
                socket_peak *= machine.numa_remote_factor
            bandwidth += min(socket_peak, threads * cluster.per_thread_bandwidth)
        floor = min(
            machine.cluster(socket).per_thread_bandwidth for socket in per_socket
        )
        bandwidth = max(bandwidth, floor * 0.5)
        memory_time = traffic / bandwidth

        body = max(parallel_compute, memory_time) + (1.0 - _OVERLAP) * min(
            parallel_compute, memory_time
        )
        fork_join = self._fork_join(profile.parallel_regions, placement)
        time_s = serial_time + body + fork_join

        utilization = self._utilization(parallel_compute, memory_time)
        peak = sum(
            machine.cluster(socket).bandwidth_bytes_s
            for socket in placement.sockets_used
        )
        bandwidth_share = (
            min(1.0, traffic / time_s / peak) if time_s > 0 and peak > 0 else 0.0
        )
        intensity = kernel.power_intensity * self._vector_power(kernel)
        return time_s, intensity, utilization, bandwidth_share, freq_power

    # -- model terms -----------------------------------------------------------

    def _compute_capacity(self, placement: ThreadPlacement) -> float:
        """Core-equivalents of the team: SMT second threads add 28%."""
        machine = self._machine
        return placement.cores_used + placement.smt_pairs * machine.smt_speedup

    def _imbalance(self, profile, placement: ThreadPlacement) -> float:
        """Static-schedule imbalance of chunked parallel iterations."""
        threads = placement.num_threads
        if threads == 1 or profile.parallel_regions == 0:
            return 1.0
        iterations = profile.parallel_iterations / profile.parallel_regions
        if iterations <= 0:
            return 1.0
        chunks = np.ceil(iterations / threads)
        quantization = (chunks * threads) / iterations
        return float(max(1.0, quantization))

    def _dram_traffic(self, kernel: CompiledKernel, placement: ThreadPlacement) -> float:
        """Bytes pulled from DRAM during one invocation.

        The working set is loaded at least once (cold misses); the part
        of it that exceeds the usable LLC is re-streamed on every pass
        over the data.
        """
        profile = kernel.profile
        llc = len(placement.sockets_used) * self._machine.llc_bytes_per_socket
        working_set = max(profile.working_set_bytes, 1.0)
        naive = profile.naive_bytes
        spill_fraction = max(0.0, (working_set - llc) / working_set)
        return working_set + max(0.0, naive - working_set) * spill_fraction

    def _effective_bandwidth(self, placement: ThreadPlacement) -> float:
        """Aggregate DRAM bandwidth the team can actually draw.

        First-touch puts the arrays on socket 0, so socket-0 threads
        stream locally while other sockets cross the QPI link.
        """
        machine = self._machine
        per_socket = placement.threads_per_socket()
        total = 0.0
        for socket, threads in per_socket.items():
            socket_peak = machine.bandwidth_per_socket
            if socket != 0:
                socket_peak *= machine.numa_remote_factor
            total += min(socket_peak, threads * _PER_THREAD_BANDWIDTH)
        return max(total, _PER_THREAD_BANDWIDTH * 0.5)

    def _fork_join(self, regions: float, placement: ThreadPlacement) -> float:
        if regions <= 0 or placement.num_threads == 1:
            return 0.0
        cost = _FORK_JOIN_BASE_S + _FORK_JOIN_PER_THREAD_S * placement.num_threads
        if len(placement.sockets_used) > 1:
            cost *= _CROSS_SOCKET_SYNC_FACTOR
        return regions * cost

    @staticmethod
    def _utilization(compute_time: float, memory_time: float) -> float:
        """Core busy fraction: memory-bound teams stall their pipelines."""
        total = max(compute_time, memory_time)
        if total <= 0:
            return 1.0
        return max(0.35, min(1.0, compute_time / total))

    def _bandwidth_share(
        self, traffic: float, time_s: float, placement: ThreadPlacement
    ) -> float:
        peak = len(placement.sockets_used) * self._machine.bandwidth_per_socket
        if time_s <= 0 or peak <= 0:
            return 0.0
        return min(1.0, traffic / time_s / peak)

    @staticmethod
    def _vector_power(kernel: CompiledKernel) -> float:
        """Wide SIMD raises dynamic power (~12% for AVX on Haswell)."""
        return 1.0 + 0.12 * (kernel.vector_width - 1.0) / 3.0
