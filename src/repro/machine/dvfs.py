"""DVFS / Turbo Boost frequency model (extension beyond the paper).

The paper's testbed (Xeon E5-2630 v3, Haswell-EP) runs Turbo Boost:
2.4 GHz base, 3.2 GHz single-core turbo, ~2.6 GHz all-core turbo, and
an AVX frequency offset when the wide vector units are active.  The
paper pins no frequencies and reports package power that implicitly
contains these effects; our default machine model folds them into its
calibrated constants.

This module makes the frequency behaviour explicit as an *opt-in*
model: pass a :class:`TurboModel` to
:class:`~repro.machine.executor.MachineExecutor` and per-placement
clocks (and the matching dynamic-power scaling) are applied.  The
ablation benchmark compares both configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.openmp import ThreadPlacement
from repro.machine.topology import Machine


@dataclass(frozen=True)
class TurboModel:
    """Active-core-count dependent clock frequency.

    The clock interpolates linearly between the single-core turbo bin
    and the all-core turbo bin as cores wake up (how Intel's turbo
    bins roughly behave), and drops by ``avx_offset_hz`` when the
    kernel executes wide vector code.  The clock never falls below
    ``min_hz``.
    """

    base_hz: float = 2.4e9
    single_core_turbo_hz: float = 3.2e9
    all_core_turbo_hz: float = 2.6e9
    avx_offset_hz: float = 0.2e9
    min_hz: float = 1.2e9
    #: dynamic power roughly follows f^power_exponent (f V^2 with V ~ f)
    power_exponent: float = 1.9

    def __post_init__(self) -> None:
        if not (
            self.min_hz
            <= self.all_core_turbo_hz
            <= self.single_core_turbo_hz
        ):
            raise ValueError("turbo bins must satisfy min <= all-core <= single-core")

    def frequency(
        self, machine: Machine, placement: ThreadPlacement, vectorized: bool
    ) -> float:
        """Effective clock of the busiest socket for this placement."""
        per_socket = placement.threads_per_socket()
        # the busiest socket dictates the team's pace
        busiest_socket = max(per_socket, key=lambda s: per_socket[s])
        socket_cores = machine.cluster(busiest_socket).cores
        cores = min(per_socket[busiest_socket], socket_cores)
        if socket_cores > 1:
            fraction = (cores - 1) / (socket_cores - 1)
        else:
            fraction = 1.0
        clock = self.single_core_turbo_hz - fraction * (
            self.single_core_turbo_hz - self.all_core_turbo_hz
        )
        if vectorized:
            clock -= self.avx_offset_hz
        return max(self.min_hz, clock)

    def power_factor(self, frequency_hz: float) -> float:
        """Dynamic-power multiplier relative to the base clock."""
        return (frequency_hz / self.base_hz) ** self.power_exponent
