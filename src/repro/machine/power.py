"""Power model and RAPL-like meter for the simulated platform.

Calibrated to the paper's envelope: Figure 4 sweeps a power budget
from 45 W (near idle) to 140 W (all cores busy on a hot kernel), and
Figure 5's measured package power for 2mm moves between roughly 80 W
and 145 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.machine.openmp import ThreadPlacement
from repro.machine.topology import ClusterPower, Machine

#: RAPL-style power domains reported by the virtual meter.  ``package``
#: is the per-socket aggregate; the other three partition it exactly
#: (``core + uncore + dram == package``).
DOMAINS: Tuple[str, ...] = ("package", "core", "uncore", "dram")

#: Domains that partition the package plane (sum to ``package``).
COMPONENT_DOMAINS: Tuple[str, ...] = ("core", "uncore", "dram")


def cluster_domain(cluster: str, domain: str) -> str:
    """Key of a per-cluster power plane (e.g. ``"P:package"``).

    Heterogeneous machines report, next to the machine-wide domains,
    one additional plane per (cluster type, domain) pair; the same
    conservation invariant holds within each cluster.
    """
    return f"{cluster}:{domain}"


def invocation_energy(time_s: float, power_w: float) -> float:
    """Energy of one kernel invocation (joules).

    The single definition shared by the executor's ground truth, the
    adaptive runtime's measured records, and the energy ledger's
    consistency checks — so ``energy_j`` can never drift between the
    producer and a consumer recomputing it.
    """
    return time_s * power_w


@dataclass(frozen=True)
class DomainPower:
    """One socket's power split into RAPL-style planes (watts).

    ``cluster`` names the cluster type occupying the socket (empty for
    breakdowns computed without cluster attribution).
    """

    socket: int
    core_w: float
    uncore_w: float
    dram_w: float
    cluster: str = ""

    @property
    def package_w(self) -> float:
        """The socket's package plane: cores + uncore + DRAM."""
        return self.core_w + self.uncore_w + self.dram_w

    def as_dict(self) -> Dict[str, float]:
        return {
            "package": self.package_w,
            "core": self.core_w,
            "uncore": self.uncore_w,
            "dram": self.dram_w,
        }


@dataclass(frozen=True)
class PowerBreakdown:
    """Whole-machine power split per socket and per domain.

    The aggregate :attr:`package_w` equals
    :meth:`PowerModel.active_power` (same model terms, summed
    per-socket instead of globally) to within floating-point
    reassociation — the conservation tests pin it at 1e-9.
    """

    sockets: Tuple[DomainPower, ...]

    @property
    def package_w(self) -> float:
        return sum(s.package_w for s in self.sockets)

    @property
    def core_w(self) -> float:
        return sum(s.core_w for s in self.sockets)

    @property
    def uncore_w(self) -> float:
        return sum(s.uncore_w for s in self.sockets)

    @property
    def dram_w(self) -> float:
        return sum(s.dram_w for s in self.sockets)

    def domain(self, name: str) -> float:
        """Total watts of one domain across sockets."""
        if name not in DOMAINS:
            raise ValueError(f"unknown power domain {name!r} (known: {DOMAINS})")
        return {
            "package": self.package_w,
            "core": self.core_w,
            "uncore": self.uncore_w,
            "dram": self.dram_w,
        }[name]

    def totals(self) -> Dict[str, float]:
        """``{domain: watts}`` across all sockets."""
        return {name: self.domain(name) for name in DOMAINS}

    def cluster_names(self) -> Tuple[str, ...]:
        """Distinct (non-empty) cluster tags in socket order."""
        names = []
        for s in self.sockets:
            if s.cluster and s.cluster not in names:
                names.append(s.cluster)
        return tuple(names)

    def cluster_totals(self) -> Dict[str, float]:
        """Per-cluster power planes, keyed :func:`cluster_domain`.

        Each cluster's package plane is computed as the sum of its
        component planes, so the per-cluster conservation invariant
        (``core + uncore + dram == package``) holds exactly.
        """
        planes: Dict[str, float] = {}
        for name in self.cluster_names():
            members = [s for s in self.sockets if s.cluster == name]
            core = sum(s.core_w for s in members)
            uncore = sum(s.uncore_w for s in members)
            dram = sum(s.dram_w for s in members)
            planes[cluster_domain(name, "core")] = core
            planes[cluster_domain(name, "uncore")] = uncore
            planes[cluster_domain(name, "dram")] = dram
            planes[cluster_domain(name, "package")] = core + uncore + dram
        return planes

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Every plane multiplied by ``factor`` (measurement noise is
        multiplicative, so a noisy package reading scales all domains
        proportionally)."""
        return PowerBreakdown(
            sockets=tuple(
                DomainPower(
                    socket=s.socket,
                    core_w=s.core_w * factor,
                    uncore_w=s.uncore_w * factor,
                    dram_w=s.dram_w * factor,
                    cluster=s.cluster,
                )
                for s in self.sockets
            )
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "totals_w": self.totals(),
            "sockets": [s.as_dict() for s in self.sockets],
        }


@dataclass(frozen=True)
class PowerModel:
    """Package-level power as a function of activity.

    ``uncore_w`` is paid per powered socket regardless of load (LLC,
    memory controllers, fabric); each idle core costs ``idle_core_w``;
    an active core adds ``active_core_w`` scaled by the workload's
    power intensity (vector FP burns more than stalled memory waits);
    a second SMT thread on a busy core adds ``smt_thread_w``; DRAM
    power rises with the consumed bandwidth share.
    """

    uncore_w: float = 13.0
    idle_core_w: float = 0.75
    active_core_w: float = 4.6
    smt_thread_w: float = 0.65
    dram_max_w: float = 9.0  # per socket at full bandwidth

    def envelope(self, machine: Machine, socket: int) -> ClusterPower:
        """The power envelope in effect on ``socket``.

        A cluster carrying its own :class:`ClusterPower` uses it; the
        rest fall back to this model's calibrated Xeon constants.
        """
        cluster = machine.cluster(socket)
        if cluster.power is not None:
            return cluster.power
        return ClusterPower(
            uncore_w=self.uncore_w,
            idle_core_w=self.idle_core_w,
            active_core_w=self.active_core_w,
            smt_thread_w=self.smt_thread_w,
            dram_max_w=self.dram_max_w,
        )

    def idle_power(self, machine: Machine) -> float:
        """Whole-package idle power (all sockets powered)."""
        if machine.is_homogeneous:
            env = self.envelope(machine, 0)
            return (
                machine.sockets * env.uncore_w
                + machine.physical_cores * env.idle_core_w
            )
        total = 0.0
        for socket in range(machine.sockets):
            env = self.envelope(machine, socket)
            total += env.uncore_w + machine.cluster(socket).cores * env.idle_core_w
        return total

    def active_power(
        self,
        machine: Machine,
        placement: ThreadPlacement,
        intensity: float,
        utilization: float,
        bandwidth_share: float,
        freq_power: Optional[Mapping[int, float]] = None,
    ) -> float:
        """Average package power while the kernel runs.

        ``intensity`` is the compiled kernel's power-intensity factor,
        ``utilization`` the fraction of time cores do work rather than
        stall, and ``bandwidth_share`` the fraction of total DRAM
        bandwidth in use.  ``freq_power`` (heterogeneous machines only)
        maps sockets to the dynamic-power factor of the DVFS state their
        cluster is running at.
        """
        if machine.is_homogeneous and freq_power is None:
            env = self.envelope(machine, 0)
            power = self.idle_power(machine)
            busy_cores = placement.cores_used
            power += busy_cores * env.active_core_w * intensity * utilization
            power += placement.smt_pairs * env.smt_thread_w * utilization
            power += len(placement.sockets_used) * env.dram_max_w * bandwidth_share
            return power
        # heterogeneous machines attribute per socket; the scalar is the
        # breakdown's package plane, so conservation is exact by
        # construction
        return self.active_breakdown(
            machine,
            placement,
            intensity,
            utilization,
            bandwidth_share,
            freq_power=freq_power,
        ).package_w

    # -- per-domain breakdowns (the virtual-RAPL meters) -----------------------

    def idle_breakdown(self, machine: Machine) -> PowerBreakdown:
        """Per-socket, per-domain power of the idle machine.

        The idle floor between kernel invocations: every socket pays
        its uncore power and its cores' idle leakage; DRAM draws
        nothing without traffic.
        """
        sockets = []
        for socket in range(machine.sockets):
            cluster = machine.cluster(socket)
            env = self.envelope(machine, socket)
            sockets.append(
                DomainPower(
                    socket=socket,
                    core_w=cluster.cores * env.idle_core_w,
                    uncore_w=env.uncore_w,
                    dram_w=0.0,
                    cluster=cluster.name,
                )
            )
        return PowerBreakdown(sockets=tuple(sockets))

    def active_breakdown(
        self,
        machine: Machine,
        placement: ThreadPlacement,
        intensity: float,
        utilization: float,
        bandwidth_share: float,
        freq_power: Optional[Mapping[int, float]] = None,
    ) -> PowerBreakdown:
        """Per-socket, per-domain split of :meth:`active_power`.

        Same model terms, attributed to the socket that pays them: each
        socket's cores pay their idle leakage plus the active/SMT power
        of the busy cores placed there; DRAM power lands on the sockets
        the team actually uses.  Summing the breakdown reproduces
        :meth:`active_power` (modulo floating-point reassociation).
        """
        busy_cores_per_socket: Dict[int, set] = {}
        smt_extra_per_place: Dict[Tuple[int, int], int] = {}
        for place in placement.assignments:
            busy_cores_per_socket.setdefault(place[0], set()).add(place)
            smt_extra_per_place[place] = smt_extra_per_place.get(place, 0) + 1
        smt_pairs_per_socket: Dict[int, int] = {}
        for (socket, _core), count in smt_extra_per_place.items():
            if count > 1:
                smt_pairs_per_socket[socket] = smt_pairs_per_socket.get(socket, 0) + 1
        sockets_used = set(placement.sockets_used)
        sockets = []
        for socket in range(machine.sockets):
            cluster = machine.cluster(socket)
            env = self.envelope(machine, socket)
            core_w = cluster.cores * env.idle_core_w
            active_w = (
                len(busy_cores_per_socket.get(socket, ()))
                * env.active_core_w
                * intensity
                * utilization
            )
            factor = freq_power.get(socket, 1.0) if freq_power else 1.0
            if factor != 1.0:
                active_w *= factor
            core_w += active_w
            core_w += (
                smt_pairs_per_socket.get(socket, 0) * env.smt_thread_w * utilization
            )
            dram_w = env.dram_max_w * bandwidth_share if socket in sockets_used else 0.0
            sockets.append(
                DomainPower(
                    socket=socket,
                    core_w=core_w,
                    uncore_w=env.uncore_w,
                    dram_w=dram_w,
                    cluster=cluster.name,
                )
            )
        return PowerBreakdown(sockets=tuple(sockets))


class RaplMeter:
    """Samples 'measured' power with realistic meter noise.

    Mirrors reading the RAPL energy counters around a kernel region:
    the returned values wobble around the model's truth with a small
    multiplicative log-normal error.
    """

    def __init__(self, model: PowerModel, seed: int = 0xE5C0) -> None:
        self._model = model
        self._rng = np.random.default_rng(seed)

    @property
    def model(self) -> PowerModel:
        return self._model

    def measure(self, true_power_w: float, sigma: float = 0.015) -> float:
        """One noisy power reading around ``true_power_w``."""
        return float(true_power_w * self._rng.lognormal(mean=0.0, sigma=sigma))

    def reseed(self, seed: int) -> None:
        """Reset the meter's noise stream (for reproducible campaigns)."""
        self._rng = np.random.default_rng(seed)
