"""Power model and RAPL-like meter for the simulated platform.

Calibrated to the paper's envelope: Figure 4 sweeps a power budget
from 45 W (near idle) to 140 W (all cores busy on a hot kernel), and
Figure 5's measured package power for 2mm moves between roughly 80 W
and 145 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.openmp import ThreadPlacement
from repro.machine.topology import Machine


@dataclass(frozen=True)
class PowerModel:
    """Package-level power as a function of activity.

    ``uncore_w`` is paid per powered socket regardless of load (LLC,
    memory controllers, fabric); each idle core costs ``idle_core_w``;
    an active core adds ``active_core_w`` scaled by the workload's
    power intensity (vector FP burns more than stalled memory waits);
    a second SMT thread on a busy core adds ``smt_thread_w``; DRAM
    power rises with the consumed bandwidth share.
    """

    uncore_w: float = 13.0
    idle_core_w: float = 0.75
    active_core_w: float = 4.6
    smt_thread_w: float = 0.65
    dram_max_w: float = 9.0  # per socket at full bandwidth

    def idle_power(self, machine: Machine) -> float:
        """Whole-package idle power (both sockets powered)."""
        return (
            machine.sockets * self.uncore_w
            + machine.physical_cores * self.idle_core_w
        )

    def active_power(
        self,
        machine: Machine,
        placement: ThreadPlacement,
        intensity: float,
        utilization: float,
        bandwidth_share: float,
    ) -> float:
        """Average package power while the kernel runs.

        ``intensity`` is the compiled kernel's power-intensity factor,
        ``utilization`` the fraction of time cores do work rather than
        stall, and ``bandwidth_share`` the fraction of total DRAM
        bandwidth in use.
        """
        power = self.idle_power(machine)
        busy_cores = placement.cores_used
        power += busy_cores * self.active_core_w * intensity * utilization
        power += placement.smt_pairs * self.smt_thread_w * utilization
        power += len(placement.sockets_used) * self.dram_max_w * bandwidth_share
        return power


class RaplMeter:
    """Samples 'measured' power with realistic meter noise.

    Mirrors reading the RAPL energy counters around a kernel region:
    the returned values wobble around the model's truth with a small
    multiplicative log-normal error.
    """

    def __init__(self, model: PowerModel, seed: int = 0xE5C0) -> None:
        self._model = model
        self._rng = np.random.default_rng(seed)

    @property
    def model(self) -> PowerModel:
        return self._model

    def measure(self, true_power_w: float, sigma: float = 0.015) -> float:
        """One noisy power reading around ``true_power_w``."""
        return float(true_power_w * self._rng.lognormal(mean=0.0, sigma=sigma))

    def reseed(self, seed: int) -> None:
        """Reset the meter's noise stream (for reproducible campaigns)."""
        self._rng = np.random.default_rng(seed)
