"""Simulated execution platform.

The paper's testbed is a two-socket NUMA machine (2x Intel Xeon
E5-2630 v3: 8 cores/socket, 2-way hyperthreading, 16 cores / 32
logical CPUs, 128 GB DDR4-1866) with RAPL power measurement.  This
package models it: :mod:`repro.machine.topology` describes the
hardware, :mod:`repro.machine.openmp` maps OpenMP thread teams onto it
under ``OMP_PLACES=cores`` with ``close``/``spread`` binding,
:mod:`repro.machine.power` provides the power model and an RAPL-like
meter, and :mod:`repro.machine.executor` turns a compiled kernel plus
a thread placement into (time, power, energy) samples.

A machine is a tuple of :class:`~repro.machine.topology.Cluster`\\ s —
one per socket — so asymmetric (big.LITTLE-style) parts are first-class
citizens: :mod:`repro.machine.registry` names the available platforms
(``xeon_2s`` is the default, bit-for-bit the historical homogeneous
testbed) and every layer resolves its machine parameter through
:func:`~repro.machine.registry.resolve_machine`.
"""

from repro.machine.dvfs import TurboModel
from repro.machine.executor import ExecutionResult, MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime, ThreadPlacement
from repro.machine.power import (
    COMPONENT_DOMAINS,
    DOMAINS,
    DomainPower,
    PowerBreakdown,
    PowerModel,
    RaplMeter,
    cluster_domain,
    invocation_energy,
)
from repro.machine.registry import (
    DEFAULT_MACHINE,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.machine.topology import Cluster, ClusterPower, Machine, default_machine

__all__ = [
    "BindingPolicy",
    "COMPONENT_DOMAINS",
    "Cluster",
    "ClusterPower",
    "DEFAULT_MACHINE",
    "DOMAINS",
    "DomainPower",
    "TurboModel",
    "ExecutionResult",
    "Machine",
    "MachineExecutor",
    "OpenMPRuntime",
    "PowerBreakdown",
    "PowerModel",
    "RaplMeter",
    "ThreadPlacement",
    "cluster_domain",
    "default_machine",
    "get_machine",
    "invocation_energy",
    "machine_names",
    "resolve_machine",
]
