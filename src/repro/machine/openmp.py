"""OpenMP runtime model: thread-team placement under OMP_PLACES=cores.

SOCRATES controls two OpenMP knobs (paper Section II): the team size
(``num_threads``, 1..32 on the testbed) and the binding policy
(``proc_bind(close)`` or ``proc_bind(spread)``), with
``OMP_PLACES=cores``.  This module reproduces libgomp's placement
semantics for those settings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.machine.topology import Machine


class BindingPolicy(enum.Enum):
    """OpenMP proc_bind policy (the paper's BP knob)."""

    CLOSE = "close"
    SPREAD = "spread"

    @property
    def omp_name(self) -> str:
        return self.value


@dataclass(frozen=True)
class ThreadPlacement:
    """Where a thread team landed on the machine.

    ``assignments`` maps each OpenMP thread id to its (socket, core)
    place; with more threads than places, several threads share a core
    via SMT.  ``cluster`` names the cluster type the team was pinned to
    (``None`` = the whole machine, the historical behaviour).
    """

    policy: BindingPolicy
    assignments: Tuple[Tuple[int, int], ...]
    cluster: Optional[str] = None

    @property
    def num_threads(self) -> int:
        return len(self.assignments)

    @property
    def sockets_used(self) -> Tuple[int, ...]:
        return tuple(sorted({socket for socket, _ in self.assignments}))

    @property
    def cores_used(self) -> int:
        return len(set(self.assignments))

    def threads_per_socket(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for socket, _ in self.assignments:
            counts[socket] = counts.get(socket, 0) + 1
        return counts

    @property
    def smt_pairs(self) -> int:
        """Cores running two (or more) threads via hyperthreading."""
        per_core: Dict[Tuple[int, int], int] = {}
        for place in self.assignments:
            per_core[place] = per_core.get(place, 0) + 1
        return sum(1 for count in per_core.values() if count > 1)


class OpenMPRuntime:
    """Places OpenMP thread teams on a :class:`Machine`."""

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self._places = machine.core_places()

    @property
    def machine(self) -> Machine:
        return self._machine

    def max_threads(self, cluster: Optional[str] = None) -> int:
        """OMP_NUM_THREADS upper bound: the number of logical CPUs.

        With ``cluster``, the bound of a team pinned to that cluster
        type (its logical CPUs across all sockets hosting it).
        """
        if cluster is None:
            return self._machine.logical_cpus
        return self._machine.cluster_logical_cpus(cluster)

    def place(
        self,
        num_threads: int,
        policy: BindingPolicy,
        cluster: Optional[str] = None,
    ) -> ThreadPlacement:
        """Assign ``num_threads`` OpenMP threads to core places.

        * ``close``: threads fill consecutive places, so a small team
          stays on one socket (good locality, single-socket bandwidth).
        * ``spread``: threads are distributed as evenly as possible
          over all places, so even a 2-thread team spans both sockets
          (double bandwidth, cross-socket synchronization).

        ``cluster`` restricts the place list to one cluster type (the
        fourth knob: an ``OMP_PLACES`` subset naming only that
        cluster's cores); the close/spread semantics then apply within
        the restricted list.

        Teams larger than the number of places wrap around, stacking a
        second SMT thread per core.
        """
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if num_threads > self.max_threads(cluster):
            where = (
                f"cluster {cluster!r}'s" if cluster is not None else "the machine's"
            )
            raise ValueError(
                f"num_threads={num_threads} exceeds {where} "
                f"{self.max_threads(cluster)} logical CPUs"
            )
        places = (
            self._places
            if cluster is None
            else self._machine.cluster_places(cluster)
        )
        count = len(places)
        assignments: List[Tuple[int, int]] = []
        if policy is BindingPolicy.CLOSE:
            for thread in range(num_threads):
                assignments.append(places[thread % count])
        else:  # SPREAD
            # libgomp partitions the place list into num_threads chunks
            # and puts one thread at the start of each chunk
            teams = min(num_threads, count)
            for slot in range(teams):
                index = (slot * count) // teams
                assignments.append(places[index])
            # a team larger than the place list stacks SMT threads; the
            # extras are spread over the places with the same rule so
            # both sockets stay balanced
            extras = num_threads - teams
            for extra in range(extras):
                index = (extra * count) // max(extras, 1)
                assignments.append(places[index])
        return ThreadPlacement(
            policy=policy, assignments=tuple(assignments), cluster=cluster
        )
