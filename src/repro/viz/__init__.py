"""Terminal-friendly renderings of the paper's plots.

The original figures are gnuplot boxplots and traces; this package
renders the same data as ASCII so the benchmark harnesses (and users
without a plotting stack) can eyeball the shapes directly.
"""

from repro.viz.ascii import boxplot, histogram, timeseries

__all__ = ["boxplot", "histogram", "timeseries"]
