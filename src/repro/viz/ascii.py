"""ASCII renderings: boxplots, time series, histograms.

All functions return strings (no printing), scale to a configurable
width, and never require a display or plotting library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    column = int(round(position * (width - 1)))
    # values outside explicit bounds clamp to the axis edges
    return max(0, min(width - 1, column))


def boxplot(
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    bounds: Optional[Tuple[float, float]] = None,
) -> str:
    """Render labelled boxplots on a shared horizontal axis.

    Each row shows ``min``..``max`` whiskers (``|---``), the
    interquartile box (``[===]``) and the median (``#``)::

        2mm   |----[==#=====]-------|
        mvt        |--[===#==]---|

    ``bounds`` fixes the axis range; by default it spans all data.
    """
    if not series:
        return ""
    all_values = np.concatenate([np.asarray(vals, dtype=float) for _, vals in series])
    lo, hi = bounds if bounds is not None else (all_values.min(), all_values.max())
    label_width = max(len(label) for label, _ in series)
    lines: List[str] = []
    for label, values in series:
        data = np.asarray(values, dtype=float)
        row = [" "] * width
        v_min, v_max = data.min(), data.max()
        q1, med, q3 = np.percentile(data, [25, 50, 75])
        c_min, c_max = _scale(v_min, lo, hi, width), _scale(v_max, lo, hi, width)
        c_q1, c_q3 = _scale(q1, lo, hi, width), _scale(q3, lo, hi, width)
        c_med = _scale(med, lo, hi, width)
        for column in range(c_min, c_max + 1):
            row[column] = "-"
        for column in range(c_q1, c_q3 + 1):
            row[column] = "="
        row[c_min] = "|"
        row[c_max] = "|"
        if c_q1 != c_min:
            row[c_q1] = "["
        if c_q3 != c_max:
            row[c_q3] = "]"
        row[c_med] = "#"
        lines.append(f"{label:<{label_width}s} {''.join(row)}")
    axis = f"{'':<{label_width}s} {lo:<.3g}{'':^{max(1, width - 12)}s}{hi:>.3g}"
    lines.append(axis)
    return "\n".join(lines)


def timeseries(
    times: Sequence[float],
    values: Sequence[float],
    height: int = 10,
    width: int = 72,
    title: str = "",
) -> str:
    """Render one signal over time as an ASCII chart.

    Values are bucketed along the x axis (mean per bucket) and drawn
    with ``*`` marks on a ``height``-row canvas; the y range is printed
    on the left.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return title
    t_lo, t_hi = times.min(), times.max()
    buckets = np.full(width, np.nan)
    for bucket in range(width):
        lo = t_lo + (t_hi - t_lo) * bucket / width
        hi = t_lo + (t_hi - t_lo) * (bucket + 1) / width
        mask = (times >= lo) & (times <= hi if bucket == width - 1 else times < hi)
        if mask.any():
            buckets[bucket] = values[mask].mean()
    v_lo = np.nanmin(buckets)
    v_hi = np.nanmax(buckets)
    span = v_hi - v_lo or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for column, value in enumerate(buckets):
        if np.isnan(value):
            continue
        row = int(round((value - v_lo) / span * (height - 1)))
        canvas[height - 1 - row][column] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, row in enumerate(canvas):
        label = v_hi if index == 0 else (v_lo if index == height - 1 else None)
        prefix = f"{label:8.1f} |" if label is not None else f"{'':8s} |"
        lines.append(prefix + "".join(row))
    lines.append(f"{'':8s} +" + "-" * width)
    lines.append(f"{'':8s}  {t_lo:<.4g}{'':^{max(1, width - 14)}s}{t_hi:>.4g}")
    return "\n".join(lines)


def meter(
    fraction: float,
    width: int = 24,
    label: str = "",
) -> str:
    """Render a 0..1 fraction as a bracketed fill bar with a percent.

    ``[############------------]  50.0% label`` — used by the
    observability dashboard for cache hit rates.
    """
    clamped = min(1.0, max(0.0, float(fraction)))
    filled = int(round(clamped * width))
    bar = "#" * filled + "-" * (width - filled)
    suffix = f" {label}" if label else ""
    return f"[{bar}] {clamped * 100:5.1f}%{suffix}"


def bucket_bars(
    labels: Sequence[str],
    counts: Sequence[float],
    width: int = 40,
) -> str:
    """Render labelled bucket counts as horizontal bars.

    Unlike :func:`histogram`, the bucketing is already done (e.g. a
    Prometheus-style histogram's fixed boundaries); this only draws.
    """
    if not labels:
        return ""
    peak = max(max(counts), 1)
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    for label, count in zip(labels, counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{str(label):>{label_width}s} |{bar} {count:g}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 48,
    title: str = "",
) -> str:
    """Render a horizontal-bar histogram of ``values``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return title
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() or 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{edges[index]:10.3g} .. {edges[index + 1]:<10.3g} |{bar} {count}")
    return "\n".join(lines)
