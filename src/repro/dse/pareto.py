"""Pareto-dominance utilities over operating points.

Figure 3 of the paper reports metric distributions *over the
Pareto-optimal configurations* of each benchmark; these helpers
compute that front from a knowledge base.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Sequence, Tuple

from repro.margot.knowledge import KnowledgeBase, OperatingPoint

#: An objective: (metric name, True if higher is better).
Objective = Tuple[str, bool]


def _objective_vector(
    point: OperatingPoint, objectives: Sequence[Objective]
) -> Tuple[float, ...]:
    """Metric means oriented so that larger is always better."""
    values = []
    for metric, maximize in objectives:
        mean = point.metric(metric).mean
        values.append(mean if maximize else -mean)
    return tuple(values)


def _dominates(lhs: Tuple[float, ...], rhs: Tuple[float, ...]) -> bool:
    """lhs dominates rhs: >= everywhere and > somewhere."""
    at_least_as_good = all(l >= r for l, r in zip(lhs, rhs))
    strictly_better = any(l > r for l, r in zip(lhs, rhs))
    return at_least_as_good and strictly_better


def pareto_filter(
    points: Iterable[OperatingPoint], objectives: Sequence[Objective]
) -> List[OperatingPoint]:
    """The non-dominated subset of ``points`` under ``objectives``."""
    candidates = list(points)
    vectors = [_objective_vector(point, objectives) for point in candidates]
    front: List[OperatingPoint] = []
    for index, vector in enumerate(vectors):
        dominated = any(
            _dominates(other, vector)
            for other_index, other in enumerate(vectors)
            if other_index != index
        )
        if not dominated:
            front.append(candidates[index])
    return front


def pareto_front(
    knowledge: KnowledgeBase, objectives: Sequence[Objective]
) -> KnowledgeBase:
    """Pareto-filter a knowledge base into a new (smaller) one."""
    return KnowledgeBase(pareto_filter(knowledge, objectives))
