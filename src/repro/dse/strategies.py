"""DSE sampling strategies.

The paper uses a full-factorial analysis but notes the approach "is
agnostic with respect to the used DSE strategy"; random and
latin-hypercube samplers are provided to demonstrate that (and are
exercised by an ablation benchmark).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

import numpy as np

PointT = TypeVar("PointT")


class SamplingStrategy:
    """Base: choose which design points to profile."""

    name = "base"

    def select(self, points: Sequence[PointT], rng: np.random.Generator) -> List[PointT]:
        raise NotImplementedError


class FullFactorialStrategy(SamplingStrategy):
    """Profile every point of the space (the paper's choice)."""

    name = "full-factorial"

    def select(self, points: Sequence[PointT], rng: np.random.Generator) -> List[PointT]:
        return list(points)


class RandomStrategy(SamplingStrategy):
    """Uniformly sample ``fraction`` of the space (at least ``minimum``)."""

    name = "random"

    def __init__(self, fraction: float = 0.25, minimum: int = 16) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self._fraction = fraction
        self._minimum = minimum

    def select(self, points: Sequence[PointT], rng: np.random.Generator) -> List[PointT]:
        count = max(self._minimum, int(round(len(points) * self._fraction)))
        count = min(count, len(points))
        indices = rng.choice(len(points), size=count, replace=False)
        return [points[index] for index in sorted(indices)]


class LatinHypercubeStrategy(SamplingStrategy):
    """Stratified sampling: cover every region of the (flattened) space.

    The point list is split into ``samples`` equal strata and one point
    is drawn per stratum, guaranteeing coverage of the extremes of
    every knob range that full random sampling can miss.
    """

    name = "latin-hypercube"

    def __init__(self, samples: int = 64) -> None:
        if samples < 1:
            raise ValueError("samples must be >= 1")
        self._samples = samples

    def select(self, points: Sequence[PointT], rng: np.random.Generator) -> List[PointT]:
        count = min(self._samples, len(points))
        edges = np.linspace(0, len(points), count + 1)
        chosen: List[PointT] = []
        for stratum in range(count):
            low = int(edges[stratum])
            high = max(low + 1, int(edges[stratum + 1]))
            index = int(rng.integers(low, high))
            chosen.append(points[min(index, len(points) - 1)])
        return chosen
