"""Design Space Exploration: profiling the autotuning space.

The paper runs a full-factorial DSE over (compiler configuration x
thread count x binding policy), profiling each point with mARGOt to
build the application knowledge.  This package provides that driver
plus Pareto filtering and two alternative DSE strategies (random and
latin-hypercube sampling) demonstrating the paper's claim that the
approach is agnostic to the exploration strategy.
"""

from repro.dse.explorer import DesignSpace, DesignSpaceExplorer, ExplorationResult
from repro.dse.pareto import pareto_filter, pareto_front
from repro.dse.strategies import (
    FullFactorialStrategy,
    LatinHypercubeStrategy,
    RandomStrategy,
    SamplingStrategy,
)

__all__ = [
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "FullFactorialStrategy",
    "LatinHypercubeStrategy",
    "RandomStrategy",
    "SamplingStrategy",
    "pareto_filter",
    "pareto_front",
]
