"""The DSE driver: profile the autotuning space into a knowledge base.

For every selected design point (compiler configuration, thread count,
binding policy) the explorer measures the kernel ``repetitions`` times
on the simulated machine (as mARGOt's profiling task does on the real
one) and stores mean/std of each EFP as an operating point.

The measurements themselves run through the shared
:class:`~repro.engine.EvaluationEngine` — compilation is memoized per
configuration, and the engine's backend decides whether design points
are evaluated serially or sharded across a process pool.  The
``DesignPoint`` / ``DesignSpace`` / ``ProfiledSample`` types are
re-exported from :mod:`repro.engine.model` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dse.strategies import FullFactorialStrategy, SamplingStrategy
from repro.engine.core import EvaluationEngine
from repro.engine.model import DesignPoint, DesignSpace, ProfiledSample
from repro.gcc.compiler import Compiler
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.polybench.workload import WorkloadProfile

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "ProfiledSample",
    "KNOB_BINDING",
    "KNOB_CLUSTER",
    "KNOB_COMPILER",
    "KNOB_THREADS",
]

#: Names of the knobs every SOCRATES operating point carries.
KNOB_COMPILER = "compiler"
KNOB_THREADS = "threads"
KNOB_BINDING = "binding"
#: The fourth knob, present only on heterogeneous machines (operating
#: points from an unpinned, whole-machine run omit it entirely so the
#: paper's three-knob knowledge bases stay unchanged).
KNOB_CLUSTER = "cluster"


@dataclass
class ExplorationResult:
    """Everything the DSE produced for one kernel."""

    kernel: str
    knowledge: KnowledgeBase
    samples: List[ProfiledSample]
    explored_points: int
    space_size: int

    @property
    def coverage(self) -> float:
        return self.explored_points / self.space_size if self.space_size else 0.0


class DesignSpaceExplorer:
    """Profiles design points on the simulated machine."""

    def __init__(
        self,
        compiler: Compiler,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        repetitions: int = 5,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        """``engine`` shares caches with other measurement consumers;
        when omitted, a private engine wraps the given components."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._engine = engine or EvaluationEngine(
            compiler=compiler, executor=executor, omp=omp
        )
        self._compiler = self._engine.compiler
        self._executor = self._engine.executor
        self._omp = self._engine.omp
        self._repetitions = repetitions

    @property
    def engine(self) -> EvaluationEngine:
        return self._engine

    def explore(
        self,
        profile: WorkloadProfile,
        space: DesignSpace,
        strategy: Optional[SamplingStrategy] = None,
        seed: int = 0xD5E,
    ) -> ExplorationResult:
        """Profile ``profile`` over ``space`` and build the knowledge base."""
        strategy = strategy or FullFactorialStrategy()
        rng = np.random.default_rng(seed)
        selected = strategy.select(space.points(), rng)
        tracer = self._engine.obs.tracer
        with tracer.span(
            "dse.explore",
            kernel=profile.kernel,
            strategy=type(strategy).__name__,
            space_size=space.size,
            selected=len(selected),
            repetitions=self._repetitions,
        ):
            samples = self._engine.evaluate(
                profile, selected, repetitions=self._repetitions
            )
            knowledge = KnowledgeBase()
            for sample in samples:
                knowledge.add(self._to_operating_point(sample))
        return ExplorationResult(
            kernel=profile.kernel,
            knowledge=knowledge,
            samples=samples,
            explored_points=len(selected),
            space_size=space.size,
        )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _to_operating_point(sample: ProfiledSample) -> OperatingPoint:
        times = np.asarray(sample.times)
        powers = np.asarray(sample.powers)
        throughputs = 1.0 / times
        energies = times * powers
        def stats(values: np.ndarray) -> MetricStats:
            std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
            return MetricStats(mean=float(values.mean()), std=std)

        knobs = {
            KNOB_COMPILER: sample.point.compiler.label,
            KNOB_THREADS: sample.point.threads,
            KNOB_BINDING: sample.point.binding.value,
        }
        if sample.point.cluster is not None:
            knobs[KNOB_CLUSTER] = sample.point.cluster
        return OperatingPoint(
            knobs=knobs,
            metrics={
                "time": stats(times),
                "throughput": stats(throughputs),
                "power": stats(powers),
                "energy": stats(energies),
            },
        )
