"""The DSE driver: profile the autotuning space into a knowledge base.

For every selected design point (compiler configuration, thread count,
binding policy) the explorer measures the kernel ``repetitions`` times
on the simulated machine (as mARGOt's profiling task does on the real
one) and stores mean/std of each EFP as an operating point.

The measurements themselves run through the shared
:class:`~repro.engine.EvaluationEngine` — compilation is memoized per
configuration, and the engine's backend decides whether design points
are evaluated serially or sharded across a process pool.  The
``DesignPoint`` / ``DesignSpace`` / ``ProfiledSample`` types are
re-exported from :mod:`repro.engine.model` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dse.strategies import FullFactorialStrategy, SamplingStrategy
from repro.engine.core import EvaluationEngine
from repro.engine.model import DesignPoint, DesignSpace, ProfiledSample
from repro.gcc.compiler import Compiler
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.polybench.workload import WorkloadProfile

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "ProfiledSample",
    "KNOB_BINDING",
    "KNOB_CLUSTER",
    "KNOB_COMPILER",
    "KNOB_THREADS",
]

#: Names of the knobs every SOCRATES operating point carries.
KNOB_COMPILER = "compiler"
KNOB_THREADS = "threads"
KNOB_BINDING = "binding"
#: The fourth knob, present only on heterogeneous machines (operating
#: points from an unpinned, whole-machine run omit it entirely so the
#: paper's three-knob knowledge bases stay unchanged).
KNOB_CLUSTER = "cluster"


@dataclass
class ExplorationResult:
    """Everything the DSE produced for one kernel."""

    kernel: str
    knowledge: KnowledgeBase
    samples: List[ProfiledSample]
    explored_points: int
    space_size: int
    pruned_points: int = 0

    @property
    def coverage(self) -> float:
        return self.explored_points / self.space_size if self.space_size else 0.0


class DesignSpaceExplorer:
    """Profiles design points on the simulated machine."""

    def __init__(
        self,
        compiler: Compiler,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        repetitions: int = 5,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        """``engine`` shares caches with other measurement consumers;
        when omitted, a private engine wraps the given components."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._engine = engine or EvaluationEngine(
            compiler=compiler, executor=executor, omp=omp
        )
        self._compiler = self._engine.compiler
        self._executor = self._engine.executor
        self._omp = self._engine.omp
        self._repetitions = repetitions

    @property
    def engine(self) -> EvaluationEngine:
        return self._engine

    def explore(
        self,
        profile: WorkloadProfile,
        space: DesignSpace,
        strategy: Optional[SamplingStrategy] = None,
        seed: int = 0xD5E,
        prune_plan=None,
    ) -> ExplorationResult:
        """Profile ``profile`` over ``space`` and build the knowledge base.

        ``prune_plan`` (a :class:`repro.analysis.cost.PrunePlan`) masks
        statically-dominated points: they keep their position in the
        noise stream — so surviving samples are bit-identical to an
        unpruned run — but are never compiled or measured.  Each
        masked point leaves one audit record in the engine's
        observability log.
        """
        strategy = strategy or FullFactorialStrategy()
        rng = np.random.default_rng(seed)
        selected = strategy.select(space.points(), rng)
        mask = None
        pruned = 0
        if prune_plan is not None:
            mask = [prune_plan.is_masked(point) for point in selected]
            pruned = sum(mask)
            self._record_prunes(profile, selected, mask, prune_plan)
        tracer = self._engine.obs.tracer
        with tracer.span(
            "dse.explore",
            kernel=profile.kernel,
            strategy=type(strategy).__name__,
            space_size=space.size,
            selected=len(selected),
            pruned=pruned,
            repetitions=self._repetitions,
        ):
            samples = self._engine.evaluate(
                profile, selected, repetitions=self._repetitions, mask=mask
            )
            knowledge = KnowledgeBase()
            for sample in samples:
                knowledge.add(self._to_operating_point(sample))
        return ExplorationResult(
            kernel=profile.kernel,
            knowledge=knowledge,
            samples=samples,
            explored_points=len(selected) - pruned,
            space_size=space.size,
            pruned_points=pruned,
        )

    def _record_prunes(self, profile, selected, mask, plan) -> None:
        """One audit record per masked point."""
        from repro.analysis.cost import point_key
        from repro.obs.audit import PruneTrace

        audit = self._engine.obs.audit
        if audit is None:  # observability disabled: nothing to record to
            return
        for point, masked in zip(selected, mask):
            if not masked:
                continue
            record = plan.masked[point_key(point)]
            audit.record_prune(
                PruneTrace(
                    kernel=profile.kernel,
                    point=record.key,
                    rule="COST001",
                    reason=record.reason,
                    dominated_by=record.dominated_by,
                    predicted_time_s=record.predicted_time_s,
                    predicted_power_w=record.predicted_power_w,
                )
            )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _to_operating_point(sample: ProfiledSample) -> OperatingPoint:
        times = np.asarray(sample.times)
        powers = np.asarray(sample.powers)
        throughputs = 1.0 / times
        energies = times * powers
        def stats(values: np.ndarray) -> MetricStats:
            std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
            return MetricStats(mean=float(values.mean()), std=std)

        knobs = {
            KNOB_COMPILER: sample.point.compiler.label,
            KNOB_THREADS: sample.point.threads,
            KNOB_BINDING: sample.point.binding.value,
        }
        if sample.point.cluster is not None:
            knobs[KNOB_CLUSTER] = sample.point.cluster
        return OperatingPoint(
            knobs=knobs,
            metrics={
                "time": stats(times),
                "throughput": stats(throughputs),
                "power": stats(powers),
                "energy": stats(energies),
            },
        )
