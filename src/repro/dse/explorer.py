"""The DSE driver: profile the autotuning space into a knowledge base.

For every selected design point (compiler configuration, thread count,
binding policy) the explorer compiles the kernel, runs it
``repetitions`` times on the simulated machine (as mARGOt's profiling
task does on the real one) and stores mean/std of each EFP as an
operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dse.strategies import FullFactorialStrategy, SamplingStrategy
from repro.gcc.compiler import Compiler
from repro.gcc.flags import FlagConfiguration
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.polybench.workload import WorkloadProfile

#: Names of the knobs every SOCRATES operating point carries.
KNOB_COMPILER = "compiler"
KNOB_THREADS = "threads"
KNOB_BINDING = "binding"


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the paper's autotuning space."""

    compiler: FlagConfiguration
    threads: int
    binding: BindingPolicy


@dataclass(frozen=True)
class DesignSpace:
    """The cartesian autotuning space CO x TN x BP (paper Section II)."""

    compiler_configs: Sequence[FlagConfiguration]
    thread_counts: Sequence[int]
    bindings: Sequence[BindingPolicy] = (BindingPolicy.CLOSE, BindingPolicy.SPREAD)

    def points(self) -> List[DesignPoint]:
        return [
            DesignPoint(compiler=config, threads=threads, binding=binding)
            for config in self.compiler_configs
            for binding in self.bindings
            for threads in self.thread_counts
        ]

    @property
    def size(self) -> int:
        return (
            len(self.compiler_configs) * len(self.thread_counts) * len(self.bindings)
        )


@dataclass
class ProfiledSample:
    """Raw repetition measurements of one design point."""

    point: DesignPoint
    times: List[float] = field(default_factory=list)
    powers: List[float] = field(default_factory=list)


@dataclass
class ExplorationResult:
    """Everything the DSE produced for one kernel."""

    kernel: str
    knowledge: KnowledgeBase
    samples: List[ProfiledSample]
    explored_points: int
    space_size: int

    @property
    def coverage(self) -> float:
        return self.explored_points / self.space_size if self.space_size else 0.0


class DesignSpaceExplorer:
    """Profiles design points on the simulated machine."""

    def __init__(
        self,
        compiler: Compiler,
        executor: MachineExecutor,
        omp: OpenMPRuntime,
        repetitions: int = 5,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._compiler = compiler
        self._executor = executor
        self._omp = omp
        self._repetitions = repetitions

    def explore(
        self,
        profile: WorkloadProfile,
        space: DesignSpace,
        strategy: Optional[SamplingStrategy] = None,
        seed: int = 0xD5E,
    ) -> ExplorationResult:
        """Profile ``profile`` over ``space`` and build the knowledge base."""
        strategy = strategy or FullFactorialStrategy()
        rng = np.random.default_rng(seed)
        selected = strategy.select(space.points(), rng)
        knowledge = KnowledgeBase()
        samples: List[ProfiledSample] = []
        for point in selected:
            sample = self._profile_point(profile, point)
            samples.append(sample)
            knowledge.add(self._to_operating_point(sample))
        return ExplorationResult(
            kernel=profile.kernel,
            knowledge=knowledge,
            samples=samples,
            explored_points=len(selected),
            space_size=space.size,
        )

    # -- internals ----------------------------------------------------------

    def _profile_point(
        self, profile: WorkloadProfile, point: DesignPoint
    ) -> ProfiledSample:
        kernel = self._compiler.compile(profile, point.compiler)
        placement = self._omp.place(point.threads, point.binding)
        sample = ProfiledSample(point=point)
        for _ in range(self._repetitions):
            result = self._executor.run(kernel, placement)
            sample.times.append(result.time_s)
            sample.powers.append(result.power_w)
        return sample

    @staticmethod
    def _to_operating_point(sample: ProfiledSample) -> OperatingPoint:
        times = np.asarray(sample.times)
        powers = np.asarray(sample.powers)
        throughputs = 1.0 / times
        energies = times * powers
        def stats(values: np.ndarray) -> MetricStats:
            std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
            return MetricStats(mean=float(values.mean()), std=std)

        return OperatingPoint(
            knobs={
                KNOB_COMPILER: sample.point.compiler.label,
                KNOB_THREADS: sample.point.threads,
                KNOB_BINDING: sample.point.binding.value,
            },
            metrics={
                "time": stats(times),
                "throughput": stats(throughputs),
                "power": stats(powers),
                "energy": stats(energies),
            },
        )
