"""Table I: metrics collected from the application of LARA strategies.

Regenerates, for each of the twelve Polybench applications, the
weaving metrics the paper reports: Att (attributes checked), Act
(actions performed), O-LOC / W-LOC / D-LOC (logical lines of the
original and weaved sources) and the Bloat ratio (D-LOC per logical
line of strategy code).

The absolute magnitudes differ from the paper (their LARA strategies
and Polybench harness are larger than ours), but the structural claims
must hold: weaved code is several times the original, the counts track
each benchmark's loop/pragma structure, and the per-benchmark ordering
of effort matches.
"""

from __future__ import annotations

import pytest

from repro.gcc.flags import paper_custom_flags, standard_levels
from repro.lara.metrics import strategy_loc, weave_benchmark
from repro.polybench.suite import BENCHMARK_NAMES, load

#: The paper's Table I rows: (Att, Act, O-LOC, W-LOC, D-LOC, Bloat).
PAPER_TABLE1 = {
    "2mm": (698, 378, 136, 2068, 1932, 7.29),
    "3mm": (708, 378, 125, 1801, 1676, 6.32),
    "atax": (684, 250, 81, 1071, 990, 3.74),
    "correlation": (1347, 410, 138, 2366, 2228, 8.41),
    "doitgen": (561, 218, 72, 1018, 946, 3.57),
    "gemver": (631, 218, 94, 1008, 914, 3.45),
    "jacobi-2d": (4429, 154, 145, 2918, 2773, 10.46),
    "mvt": (339, 154, 64, 571, 507, 1.91),
    "nussinov": (551, 154, 78, 1356, 1278, 4.82),
    "seidel-2d": (445, 154, 47, 565, 518, 1.95),
    "syr2k": (376, 186, 66, 749, 683, 2.58),
    "syrk": (370, 186, 62, 743, 681, 2.57),
}

_CONFIGS = standard_levels() + paper_custom_flags()


def _weave_all():
    return {name: weave_benchmark(load(name), _CONFIGS)[0] for name in BENCHMARK_NAMES}


@pytest.fixture(scope="module")
def reports(request):
    return _weave_all()


def test_table1_weaving_metrics(benchmark, capsys):
    reports = benchmark.pedantic(_weave_all, rounds=1, iterations=1)

    lines = [
        "",
        "Table I -- metrics from the application of the LARA strategies",
        f"(strategy implementation: {strategy_loc()} logical lines; paper: 265 LARA lines)",
        f"{'Benchmark':12s} {'Att':>6s} {'Act':>5s} {'O-LOC':>6s} {'W-LOC':>6s} "
        f"{'D-LOC':>6s} {'Bloat':>6s} | {'paper Att':>9s} {'paper W-LOC':>11s} {'paper Bloat':>11s}",
    ]
    totals = [0.0] * 6
    for name in BENCHMARK_NAMES:
        report = reports[name]
        paper = PAPER_TABLE1[name]
        row = (
            report.attributes,
            report.actions,
            report.original_loc,
            report.weaved_loc,
            report.delta_loc,
            report.bloat,
        )
        totals = [t + r for t, r in zip(totals, row)]
        lines.append(
            f"{name:12s} {row[0]:6d} {row[1]:5d} {row[2]:6d} {row[3]:6d} "
            f"{row[4]:6d} {row[5]:6.2f} | {paper[0]:9d} {paper[3]:11d} {paper[5]:11.2f}"
        )
    averages = [t / len(BENCHMARK_NAMES) for t in totals]
    lines.append(
        f"{'Average':12s} {averages[0]:6.0f} {averages[1]:5.0f} {averages[2]:6.0f} "
        f"{averages[3]:6.0f} {averages[4]:6.0f} {averages[5]:6.2f} | "
        f"{928:9d} {1353:11d} {4.10:11.2f}"
    )
    print("\n".join(lines))

    # -- structural claims of the paper --------------------------------------
    for name, report in reports.items():
        # the weaved application is several times the original
        assert report.weaved_loc >= 4 * report.original_loc, name
        assert report.delta_loc > 0 and report.bloat > 0, name
    # weaving is automatic: every benchmark weaves with the same strategies
    assert len(reports) == 12


def test_bloat_scales_with_kernel_size(reports):
    """Bigger kernels weave more code (the paper's 2mm vs mvt contrast)."""
    assert reports["2mm"].delta_loc > reports["mvt"].delta_loc
    assert reports["correlation"].delta_loc > reports["seidel-2d"].delta_loc


def test_attribute_counts_track_loops(reports):
    """Paper: counts relate to the number of loops in each kernel."""
    assert reports["3mm"].attributes > reports["mvt"].attributes
    assert reports["correlation"].attributes > reports["syrk"].attributes


def test_original_loc_ordering_matches_paper(reports):
    """Per-benchmark relative source sizes follow the paper's O-LOC."""
    ours = [reports[name].original_loc for name in BENCHMARK_NAMES]
    paper = [PAPER_TABLE1[name][2] for name in BENCHMARK_NAMES]
    # Spearman-style check: the big-vs-small ordering largely agrees
    import numpy as np

    ours_rank = np.argsort(np.argsort(ours))
    paper_rank = np.argsort(np.argsort(paper))
    agreement = np.corrcoef(ours_rank, paper_rank)[0, 1]
    assert agreement > 0.5
