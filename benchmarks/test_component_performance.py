"""Component performance benchmarks (tooling speed, not paper results).

These time the reproduction's own hot paths with pytest-benchmark's
statistical repetition: the C frontend, the weaver, the analytical
compiler + machine model, the AS-RTM decision, and Bayesian-network
inference.  They guard against performance regressions that would make
the experiment harnesses (full-factorial DSE = tens of thousands of
model evaluations) impractically slow.

Every benchmarked callable is wrapped in a
:class:`repro.bench.SpanTimer` span, so these tier-2 numbers and the
``socrates bench`` scenario baselines come from the same measurement
code path (the obs tracer) rather than ad-hoc ``time.perf_counter()``
pairs; each test cross-checks that the span record saw every
pytest-benchmark round.
"""

from __future__ import annotations

import pytest

from repro.bench import SpanTimer
from repro.cir import parse, to_source
from repro.gcc.compiler import Compiler
from repro.gcc.flags import FlagConfiguration, OptLevel, standard_levels
from repro.lara.metrics import weave_benchmark
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.topology import default_machine
from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.state import OptimizationState, minimize_time
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


@pytest.fixture(scope="module")
def machine():
    return default_machine()


@pytest.fixture(scope="module")
def source_2mm():
    return load("2mm").source


@pytest.fixture()
def timer():
    """A fresh span timer per test; asserts it actually recorded spans."""
    span_timer = SpanTimer()
    yield span_timer
    assert span_timer.tracer.spans, "benchmark bypassed the span timer"


def test_perf_parser(benchmark, timer, source_2mm):
    unit = benchmark(timer.wrap("cir.parse", parse), source_2mm)
    assert unit.has_function("kernel_2mm")
    assert timer.count("cir.parse") >= 1
    assert timer.total_s("cir.parse") > 0.0


def test_perf_printer(benchmark, timer, source_2mm):
    unit = parse(source_2mm)
    text = benchmark(timer.wrap("cir.to_source", to_source), unit)
    assert "kernel_2mm" in text
    assert timer.count("cir.to_source") >= 1


def test_perf_workload_profile(benchmark, timer):
    app = load("2mm")
    profile = benchmark(timer.wrap("workload.profile", profile_kernel), app)
    assert profile.flops > 0
    assert timer.count("workload.profile") >= 1


def test_perf_weave(benchmark, timer):
    app = load("mvt")
    configs = standard_levels()
    report, _ = benchmark(timer.wrap("lara.weave", weave_benchmark), app, configs)
    assert report.weaved_loc > report.original_loc
    assert timer.count("lara.weave") >= 1


def test_perf_compile(benchmark, timer):
    profile = profile_kernel(load("2mm"))
    compiler = Compiler()
    config = FlagConfiguration(OptLevel.O3)

    def compile_uncached():
        compiler._cache.clear()
        return compiler.compile(profile, config)

    kernel = benchmark(timer.wrap("gcc.compile", compile_uncached))
    assert kernel.total_cycles > 0
    assert timer.count("gcc.compile") >= 1


def test_perf_machine_evaluate(benchmark, timer, machine):
    compiled = Compiler().compile(profile_kernel(load("2mm")), FlagConfiguration(OptLevel.O2))
    omp = OpenMPRuntime(machine)
    executor = MachineExecutor(machine)
    placement = omp.place(16, BindingPolicy.CLOSE)
    result = benchmark(
        timer.wrap("machine.evaluate", executor.evaluate), compiled, placement
    )
    assert result.time_s > 0
    assert timer.count("machine.evaluate") >= 1


def test_perf_asrtm_update(benchmark, timer, machine):
    """One mARGOt decision over a 512-point knowledge base — the cost
    the weaved update() call pays per kernel invocation."""
    from repro.dse.explorer import DesignSpace, DesignSpaceExplorer

    omp = OpenMPRuntime(machine)
    explorer = DesignSpaceExplorer(Compiler(), MachineExecutor(machine), omp, repetitions=1)
    space = DesignSpace(compiler_configs=standard_levels(), thread_counts=list(range(1, 33)))
    knowledge = explorer.explore(profile_kernel(load("2mm")), space).knowledge
    asrtm = ApplicationRuntimeManager(knowledge)
    asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
    point = benchmark(timer.wrap("asrtm.update", asrtm.update))
    assert point.metric("time").mean > 0
    assert timer.count("asrtm.update") >= 1


def test_perf_bn_posterior(benchmark, timer):
    """One COBAYN posterior over the 128-combo space."""
    import numpy as np

    from repro.cobayn.bn import DiscreteBayesianNetwork, NodeSpec
    from repro.cobayn.corpus import flag_assignment
    from repro.gcc.flags import cobayn_space

    nodes = [NodeSpec(f"ft{i}", 3) for i in range(4)]
    nodes.append(NodeSpec("level", 2))
    from repro.gcc.flags import ALL_FLAGS

    nodes.extend(NodeSpec(flag.value, 2) for flag in ALL_FLAGS)
    network = DiscreteBayesianNetwork(nodes)
    rng = np.random.default_rng(0)
    rows = []
    for _ in range(150):
        row = {f"ft{i}": int(rng.integers(3)) for i in range(4)}
        row["level"] = int(rng.integers(2))
        for flag in ALL_FLAGS:
            row[flag.value] = int(rng.integers(2))
        rows.append(row)
    network.fit(rows)
    evidence = {f"ft{i}": 1 for i in range(4)}
    query = flag_assignment(cobayn_space()[77])

    probability = benchmark(timer.wrap("bn.posterior", network.posterior), query, evidence)
    assert 0.0 <= probability <= 1.0
    assert timer.count("bn.posterior") >= 1
