"""Ablation benchmarks for SOCRATES' design choices.

Five ablations (DESIGN.md §6):

1. **DSE strategy** — the paper uses full-factorial profiling but
   claims strategy-agnosticism; random and latin-hypercube sampling at
   a quarter of the cost must find near-optimal operating points.
2. **COBAYN vs. random pruning** — replacing the Bayesian-network
   prediction with random picks from the 128-combo space degrades the
   quality of the compiler sub-space.
3. **Monitor feedback on/off** — when the machine drifts from its
   design-time profile, only the feedback-coupled AS-RTM keeps a power
   budget honest.
4. **Dataset drift** — LARGE-profiled knowledge still selects a
   near-optimal configuration on a MEDIUM dataset.
5. **Turbo/DVFS model** — the explicit frequency model shifts single-
   thread performance most and raises full-load power, without
   changing any qualitative conclusion.
6. **COBAYN leave-one-out quality** — the full cross-validation sweep:
   every held-out kernel's predicted combinations land near the top of
   the true 128-combination ranking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cobayn.autotuner import CobaynAutotuner
from repro.cobayn.corpus import build_corpus
from repro.dse.explorer import DesignSpace, DesignSpaceExplorer
from repro.dse.strategies import (
    FullFactorialStrategy,
    LatinHypercubeStrategy,
    RandomStrategy,
)
from repro.gcc.flags import cobayn_space, standard_levels
from repro.machine.openmp import BindingPolicy
from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.monitor import PowerMonitor
from repro.margot.state import Constraint, OptimizationState, minimize_time
from repro.milepost.features import extract_features
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel

# ---------------------------------------------------------------------------
# ablation 1: DSE strategies
# ---------------------------------------------------------------------------


def _best_time(knowledge):
    return min(point.metric("time").mean for point in knowledge)


def _run_dse_ablation(full_toolflow):
    profile = profile_kernel(load("2mm"))
    space = DesignSpace(
        compiler_configs=standard_levels(),
        thread_counts=list(range(1, 33)),
    )
    explorer = DesignSpaceExplorer(
        full_toolflow.compiler, full_toolflow.executor, full_toolflow.omp, repetitions=3
    )
    outcomes = {}
    strategies = [
        FullFactorialStrategy(),
        RandomStrategy(fraction=0.25, minimum=32),
        LatinHypercubeStrategy(samples=64),
    ]
    for strategy in strategies:
        result = explorer.explore(profile, space, strategy=strategy, seed=1)
        outcomes[strategy.name] = {
            "points": result.explored_points,
            "best_ms": _best_time(result.knowledge) * 1e3,
        }
    return outcomes


def test_ablation_dse_strategies(benchmark, full_toolflow, capsys):
    outcomes = benchmark.pedantic(
        _run_dse_ablation, args=(full_toolflow,), rounds=1, iterations=1
    )
    lines = ["", "Ablation 1 -- DSE strategy (2mm, 4 levels x 32 threads x 2 bindings)"]
    for name, row in outcomes.items():
        lines.append(f"  {name:16s} points={row['points']:4d} best={row['best_ms']:8.1f} ms")
    print("\n".join(lines))

    full = outcomes["full-factorial"]
    for name in ("random", "latin-hypercube"):
        sampled = outcomes[name]
        assert sampled["points"] <= full["points"] // 3
        # sampling still finds a configuration within 40% of the optimum
        assert sampled["best_ms"] <= full["best_ms"] * 1.4


# ---------------------------------------------------------------------------
# ablation 2: COBAYN vs random flag pruning
# ---------------------------------------------------------------------------


def _flag_space_quality(configs, profile, toolflow):
    placement = toolflow.omp.place(16, BindingPolicy.CLOSE)
    return min(
        toolflow.executor.evaluate(
            toolflow.compiler.compile(profile, config), placement
        ).time_s
        for config in configs
    )


def _run_pruning_ablation(full_toolflow):
    target = load("2mm")
    train = [app for app in (load(n) for n in (
        "3mm", "atax", "correlation", "doitgen", "gemver", "jacobi-2d",
        "mvt", "nussinov", "seidel-2d", "syr2k", "syrk",
    ))]
    corpus = build_corpus(train, full_toolflow.compiler, full_toolflow.executor, full_toolflow.omp)
    tuner = CobaynAutotuner()
    tuner.train(corpus)
    features = extract_features(target.parse(), target.kernels[0])
    profile = profile_kernel(target)

    cobayn_picks = tuner.predict_top(features, 4)
    rng = np.random.default_rng(99)
    space = cobayn_space()
    random_trials = []
    for _ in range(20):
        picks = [space[index] for index in rng.choice(len(space), size=4, replace=False)]
        random_trials.append(_flag_space_quality(picks, profile, full_toolflow))
    return {
        "cobayn_ms": _flag_space_quality(cobayn_picks, profile, full_toolflow) * 1e3,
        "random_mean_ms": float(np.mean(random_trials)) * 1e3,
        "random_best_ms": float(np.min(random_trials)) * 1e3,
        "oracle_ms": _flag_space_quality(space, profile, full_toolflow) * 1e3,
    }


def test_ablation_cobayn_vs_random_pruning(benchmark, full_toolflow):
    rows = benchmark.pedantic(
        _run_pruning_ablation, args=(full_toolflow,), rounds=1, iterations=1
    )
    print(
        "\nAblation 2 -- compiler-space pruning quality (2mm, best time in the 4-combo space)\n"
        f"  COBAYN top-4:      {rows['cobayn_ms']:8.1f} ms\n"
        f"  random-4 (mean):   {rows['random_mean_ms']:8.1f} ms\n"
        f"  random-4 (best):   {rows['random_best_ms']:8.1f} ms\n"
        f"  oracle (all 128):  {rows['oracle_ms']:8.1f} ms"
    )
    # COBAYN's picks beat the average random 4-subset and sit close to
    # the oracle over the whole 128-combo space
    assert rows["cobayn_ms"] <= rows["random_mean_ms"]
    assert rows["cobayn_ms"] <= rows["oracle_ms"] * 1.6


# ---------------------------------------------------------------------------
# ablation 3: monitor feedback on/off
# ---------------------------------------------------------------------------


def _run_feedback_ablation(full_toolflow):
    """The machine draws 20% more power than profiled; a 100 W budget
    must still be met — but only the feedback-enabled AS-RTM does it."""
    profile = profile_kernel(load("2mm"))
    space = DesignSpace(
        compiler_configs=standard_levels(), thread_counts=list(range(1, 33))
    )
    explorer = DesignSpaceExplorer(
        full_toolflow.compiler, full_toolflow.executor, full_toolflow.omp, repetitions=3
    )
    knowledge = explorer.explore(profile, space).knowledge
    drift = 1.20

    outcomes = {}
    for feedback_enabled in (False, True):
        asrtm = ApplicationRuntimeManager(knowledge)
        state = OptimizationState("budget", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0))
        )
        asrtm.add_state(state)
        monitor = PowerMonitor()
        if feedback_enabled:
            asrtm.attach_monitor("power", monitor)
        measured = []
        for _ in range(12):
            point = asrtm.update()
            true_power = point.metric("power").mean * drift
            monitor.push(true_power)
            measured.append(true_power)
        outcomes["with-feedback" if feedback_enabled else "no-feedback"] = {
            "settled_power": float(np.mean(measured[-4:])),
        }
    return outcomes


def test_ablation_feedback_adaptation(benchmark, full_toolflow):
    outcomes = benchmark.pedantic(
        _run_feedback_ablation, args=(full_toolflow,), rounds=1, iterations=1
    )
    print(
        "\nAblation 3 -- power budget (100 W) under a +20% machine drift\n"
        f"  no feedback:   settled at {outcomes['no-feedback']['settled_power']:6.1f} W\n"
        f"  with feedback: settled at {outcomes['with-feedback']['settled_power']:6.1f} W"
    )
    assert outcomes["no-feedback"]["settled_power"] > 102.0  # budget blown
    assert outcomes["with-feedback"]["settled_power"] <= 102.0  # budget held


# ---------------------------------------------------------------------------
# ablation 4: dataset drift (knowledge profiled at LARGE, run at MEDIUM)
# ---------------------------------------------------------------------------


def _run_dataset_drift(full_toolflow):
    """Design-time knowledge comes from the LARGE dataset; production
    inputs shrink to MEDIUM.  The *relative* ordering of configurations
    barely moves, so the knowledge still selects a near-optimal point —
    the premise that lets SOCRATES profile once and adapt forever."""
    from repro.polybench.datasets import dataset_sizes

    app = load("2mm")
    space = DesignSpace(
        compiler_configs=standard_levels(), thread_counts=[1, 2, 4, 8, 16, 24, 32]
    )
    explorer = DesignSpaceExplorer(
        full_toolflow.compiler, full_toolflow.executor, full_toolflow.omp, repetitions=3
    )
    knowledge_large = explorer.explore(profile_kernel(app), space).knowledge
    asrtm = ApplicationRuntimeManager(knowledge_large)
    asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
    choice = asrtm.update()

    # evaluate the chosen configuration and the true optimum at MEDIUM
    medium_profile = profile_kernel(
        app, size_overrides=dataset_sizes("2mm", "MEDIUM")
    )
    from repro.gcc.flags import parse_label

    def medium_time(point):
        compiled = full_toolflow.compiler.compile(
            medium_profile, parse_label(str(point.knob("compiler")))
        )
        placement = full_toolflow.omp.place(
            int(point.knob("threads")),
            BindingPolicy(str(point.knob("binding"))),
        )
        return full_toolflow.executor.evaluate(compiled, placement).time_s

    chosen_ms = medium_time(choice) * 1e3
    best_ms = min(medium_time(point) for point in knowledge_large) * 1e3
    return {"chosen_ms": chosen_ms, "best_ms": best_ms}


def test_ablation_dataset_drift(benchmark, full_toolflow):
    rows = benchmark.pedantic(
        _run_dataset_drift, args=(full_toolflow,), rounds=1, iterations=1
    )
    print(
        "\nAblation 4 -- LARGE-profiled knowledge driving a MEDIUM dataset (2mm)\n"
        f"  selected config at MEDIUM: {rows['chosen_ms']:8.2f} ms\n"
        f"  oracle config at MEDIUM:   {rows['best_ms']:8.2f} ms"
    )
    # the LARGE-trained choice stays within 2x of the MEDIUM oracle
    assert rows["chosen_ms"] <= rows["best_ms"] * 2.0


# ---------------------------------------------------------------------------
# ablation 5: explicit DVFS/turbo model on/off
# ---------------------------------------------------------------------------


def _run_turbo_ablation(full_toolflow):
    from repro.machine.dvfs import TurboModel
    from repro.machine.executor import MachineExecutor

    profile = profile_kernel(load("syrk"))
    compiled = full_toolflow.compiler.compile(profile, standard_levels()[2])  # -O2
    machine = full_toolflow.machine
    base = MachineExecutor(machine)
    boosted = MachineExecutor(machine, turbo=TurboModel())
    rows = {}
    for threads in (1, 8, 16, 32):
        placement = full_toolflow.omp.place(threads, BindingPolicy.CLOSE)
        rows[threads] = {
            "base_ms": base.evaluate(compiled, placement).time_s * 1e3,
            "turbo_ms": boosted.evaluate(compiled, placement).time_s * 1e3,
            "base_w": base.evaluate(compiled, placement).power_w,
            "turbo_w": boosted.evaluate(compiled, placement).power_w,
        }
    return rows


def test_ablation_turbo_model(benchmark, full_toolflow):
    rows = benchmark.pedantic(
        _run_turbo_ablation, args=(full_toolflow,), rounds=1, iterations=1
    )
    lines = ["", "Ablation 5 -- explicit Turbo/DVFS model (syrk, -O2, close binding)"]
    lines.append(f"  {'threads':>7s} {'base[ms]':>9s} {'turbo[ms]':>9s} {'base[W]':>8s} {'turbo[W]':>8s}")
    for threads, row in rows.items():
        lines.append(
            f"  {threads:7d} {row['base_ms']:9.1f} {row['turbo_ms']:9.1f} "
            f"{row['base_w']:8.1f} {row['turbo_w']:8.1f}"
        )
    print("\n".join(lines))
    # single-thread turbo gain is the largest (3.2 vs 2.4 GHz bins)
    gain_1 = rows[1]["base_ms"] / rows[1]["turbo_ms"]
    gain_16 = rows[16]["base_ms"] / rows[16]["turbo_ms"]
    assert gain_1 > gain_16
    assert gain_1 > 1.15
    # turbo burns more power at full load
    assert rows[16]["turbo_w"] > rows[16]["base_w"]


# ---------------------------------------------------------------------------
# ablation 6: COBAYN leave-one-out quality over the whole suite
# ---------------------------------------------------------------------------


def _run_loocv(full_toolflow, apps):
    from repro.cobayn.evaluation import loocv_report

    return loocv_report(
        apps, full_toolflow.compiler, full_toolflow.executor, full_toolflow.omp, k=4
    )


def test_ablation_cobayn_loocv(benchmark, full_toolflow, apps):
    report = benchmark.pedantic(
        _run_loocv, args=(full_toolflow, apps), rounds=1, iterations=1
    )
    print("\nAblation 6 -- COBAYN leave-one-out quality (true rank of predictions)")
    print(report.to_table())
    # every held-out app gets at least one prediction in the true top
    # quartile, and the mean predicted rank crushes the random baseline
    assert report.worst_best_rank < 32
    assert report.mean_rank < report.random_baseline_mean_rank() / 2.0
