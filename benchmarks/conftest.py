"""Shared fixtures for the experiment-reproduction benchmarks.

These benchmarks regenerate the paper's Table I and Figures 3-5.  The
full-fidelity toolflow (thread sweep 1..32, 5 DSE repetitions,
leave-one-out COBAYN training) is session-scoped and built lazily per
application.
"""

from __future__ import annotations

import pytest

from repro.core.toolflow import SocratesToolflow
from repro.polybench.suite import all_apps, load


@pytest.fixture(scope="session")
def full_toolflow():
    return SocratesToolflow(dse_repetitions=5)


class _ResultCache:
    def __init__(self, toolflow: SocratesToolflow) -> None:
        self._toolflow = toolflow
        self._results = {}

    def build(self, name: str):
        if name not in self._results:
            self._results[name] = self._toolflow.build(load(name))
        return self._results[name]


@pytest.fixture(scope="session")
def results(full_toolflow):
    return _ResultCache(full_toolflow)


@pytest.fixture(scope="session")
def apps():
    return all_apps()
