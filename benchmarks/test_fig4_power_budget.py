"""Figure 4: static analysis under a power budget (2mm).

mARGOt is asked to *minimize execution time subject to average power
<= budget* while the budget sweeps 45 W -> 140 W (the paper's x-axis).
For each budget the harness prints the achieved execution time and the
selected software knobs (compiler flags, OpenMP threads, binding),
mirroring the four stacked panels of the paper's figure.

Claims reproduced:
* execution time is monotonically non-increasing in the budget, with a
  large total swing (the paper spans 1095 ms -> 15275 ms);
* the selected knobs show *no clear trend*: compiler configuration,
  thread count and binding all change non-monotonically along the
  sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import Constraint, OptimizationState, minimize_time

BUDGETS_W = np.linspace(45.0, 140.0, 20)


def _sweep(knowledge):
    asrtm = ApplicationRuntimeManager(knowledge)
    goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, BUDGETS_W[0])
    state = OptimizationState("power-budget", rank=minimize_time())
    state.add_constraint(Constraint(goal))
    asrtm.add_state(state)
    rows = []
    for budget in BUDGETS_W:
        goal.value = float(budget)
        point = asrtm.update()
        rows.append(
            {
                "budget": float(budget),
                "time_ms": point.metric("time").mean * 1e3,
                "power": point.metric("power").mean,
                "compiler": str(point.knob("compiler")),
                "threads": int(point.knob("threads")),
                "binding": str(point.knob("binding")),
            }
        )
    return rows


def test_fig4_power_budget_sweep(benchmark, results):
    built = results.build("2mm")
    rows = benchmark.pedantic(
        _sweep, args=(built.exploration.knowledge,), rounds=1, iterations=1
    )

    lines = [
        "",
        "Figure 4 -- minimize exec time of 2mm under a power budget",
        f"{'Budget[W]':>9s} {'Exec[ms]':>9s} {'Power[W]':>9s} {'Thr':>4s} {'Bind':>6s}  Compiler flags",
    ]
    for row in rows:
        lines.append(
            f"{row['budget']:9.1f} {row['time_ms']:9.1f} {row['power']:9.1f} "
            f"{row['threads']:4d} {row['binding']:>6s}  {row['compiler']}"
        )
    print("\n".join(lines))

    times = [row["time_ms"] for row in rows]
    # execution time never worsens as the budget grows
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier * 1.0001
    # the power-performance swing is large (paper: ~14x)
    assert times[0] / times[-1] > 4.0
    # budgets are respected by the predicted power
    for row in rows:
        assert row["power"] <= row["budget"] * 1.02 or row["budget"] <= 46.0
    # low budgets force few threads; high budgets use most of the machine
    assert rows[0]["threads"] <= 4
    assert rows[-1]["threads"] >= 16


def test_fig4_no_clear_knob_trend(results):
    """The knob trajectory is not monotone: compiler and binding flip."""
    built = results.build("2mm")
    rows = _sweep(built.exploration.knowledge)
    compilers = [row["compiler"] for row in rows]
    threads = [row["threads"] for row in rows]
    # several distinct compiler configurations and thread counts appear
    assert len(set(compilers)) >= 2
    assert len(set(threads)) >= 6
    # threads not perfectly monotone (binding/compiler swaps interleave)
    strictly_monotone = all(a <= b for a, b in zip(threads, threads[1:]))
    compiler_changes = sum(1 for a, b in zip(compilers, compilers[1:]) if a != b)
    assert compiler_changes >= 1 or not strictly_monotone


def test_fig4_infeasible_budget_relaxes_gracefully(results):
    """Below the machine's floor the AS-RTM picks the closest point."""
    built = results.build("2mm")
    asrtm = ApplicationRuntimeManager(built.exploration.knowledge)
    goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 10.0)
    state = OptimizationState("impossible", rank=minimize_time())
    state.add_constraint(Constraint(goal))
    asrtm.add_state(state)
    point = asrtm.update()
    low, _ = built.exploration.knowledge.metric_bounds("power")
    assert point.metric("power").mean <= low * 1.05
