"""Figure 3: power/throughput distribution over the Pareto curve.

For every benchmark, a full-factorial DSE (8 compiler configurations x
32 thread counts x 2 bindings, 5 repetitions) builds the knowledge
base; the Pareto-optimal configurations under (maximize throughput,
minimize power) are kept, both metrics are normalized by their
per-application mean (as in the paper's plot), and the distribution
(min / Q1 / median / Q3 / max) is printed as the textual equivalent of
the paper's boxplots.

Claim reproduced: the normalized spread is wide for every application
(roughly 0.5x-2.5x in the paper), hence **no one-fits-all
configuration exists** and runtime selection is worth it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.pareto import pareto_filter
from repro.polybench.suite import BENCHMARK_NAMES


def _distributions(results):
    rows = {}
    for name in BENCHMARK_NAMES:
        built = results.build(name)
        front = pareto_filter(
            built.exploration.knowledge.points(),
            [("throughput", True), ("power", False)],
        )
        powers = np.array([point.metric("power").mean for point in front])
        throughputs = np.array([point.metric("throughput").mean for point in front])
        rows[name] = {
            "points": len(front),
            "power": powers / powers.mean(),
            "throughput": throughputs / throughputs.mean(),
        }
    return rows


def _quartiles(values):
    return (
        float(values.min()),
        float(np.percentile(values, 25)),
        float(np.median(values)),
        float(np.percentile(values, 75)),
        float(values.max()),
    )


def test_fig3_pareto_distribution(benchmark, results):
    rows = benchmark.pedantic(_distributions, args=(results,), rounds=1, iterations=1)

    lines = [
        "",
        "Figure 3 -- normalized power/throughput over the Pareto curve",
        f"{'Benchmark':12s} {'#OPs':>5s} | {'power: min/Q1/med/Q3/max':>34s} | "
        f"{'throughput: min/Q1/med/Q3/max':>34s}",
    ]
    for name in BENCHMARK_NAMES:
        row = rows[name]
        p = _quartiles(row["power"])
        t = _quartiles(row["throughput"])
        lines.append(
            f"{name:12s} {row['points']:5d} | "
            f"{p[0]:5.2f} {p[1]:5.2f} {p[2]:5.2f} {p[3]:5.2f} {p[4]:5.2f}      | "
            f"{t[0]:5.2f} {t[1]:5.2f} {t[2]:5.2f} {t[3]:5.2f} {t[4]:5.2f}"
        )
    print("\n".join(lines))

    from repro.viz.ascii import boxplot

    print("\nnormalized power (boxplot):")
    print(boxplot([(name, rows[name]["power"]) for name in BENCHMARK_NAMES], bounds=(0.0, 2.5)))
    print("\nnormalized throughput (boxplot):")
    print(
        boxplot(
            [(name, rows[name]["throughput"]) for name in BENCHMARK_NAMES],
            bounds=(0.0, 2.5),
        )
    )

    # -- the paper's claims ----------------------------------------------------
    wide_spread_apps = 0
    for name in BENCHMARK_NAMES:
        row = rows[name]
        # a real front: multiple Pareto-optimal configurations everywhere
        assert row["points"] >= 4, name
        # normalized metrics straddle 1.0 (the mean)
        assert row["power"].min() < 1.0 < row["power"].max(), name
        assert row["throughput"].min() < 1.0 < row["throughput"].max(), name
        if row["power"].max() / row["power"].min() > 1.6:
            wide_spread_apps += 1
    # "Given the large power/performance swing, there is no one-fits-all
    # configuration": the majority of applications show a wide swing
    assert wide_spread_apps >= 8


def test_fig3_fronts_use_distinct_configurations(results):
    """The Pareto fronts mix compiler flags, thread counts and bindings."""
    distinct_compilers = set()
    distinct_threads = set()
    for name in BENCHMARK_NAMES[:6]:
        built = results.build(name)
        front = pareto_filter(
            built.exploration.knowledge.points(),
            [("throughput", True), ("power", False)],
        )
        distinct_compilers |= {point.knob("compiler") for point in front}
        distinct_threads |= {point.knob("threads") for point in front}
    assert len(distinct_compilers) >= 3
    assert len(distinct_threads) >= 6
