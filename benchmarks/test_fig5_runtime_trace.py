"""Figure 5: execution trace of 2mm under changing requirements.

The adaptive 2mm runs for 300 virtual seconds while the application
requirement switches between the energy-efficient policy (maximize
Thr/W^2, 0-100 s), the performance policy (maximize throughput,
100-200 s) and back (200-300 s) — exactly the schedule of the paper's
figure.  The harness prints a down-sampled trace of the five signals
the paper plots (power, exec time, binding, compiler flags, threads).

Claims reproduced:
* the knobs switch at the 100 s and 200 s boundaries;
* the performance phase draws visibly more power and runs faster;
* the two energy-efficient phases settle on the same configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveApplication
from repro.core.scenario import Phase, Scenario
from repro.machine.power import RaplMeter
from repro.margot.state import (
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
)

DURATION_S = 300.0
SWITCH_1_S = 100.0
SWITCH_2_S = 200.0


def _fresh_app(built):
    base = built.adaptive
    app = AdaptiveApplication(
        name="2mm",
        versions=base._versions,
        knowledge=built.exploration.knowledge,
        executor=base._executor,
        omp=base._omp,
        meter=RaplMeter(base._executor.power_model, seed=0xF15),
    )
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    return app


def _run_trace(built):
    scenario = Scenario(
        phases=[
            Phase(0.0, "Thr/W^2"),
            Phase(SWITCH_1_S, "Throughput"),
            Phase(SWITCH_2_S, "Thr/W^2"),
        ],
        duration_s=DURATION_S,
    )
    return scenario.run(_fresh_app(built))


def _phase(trace, lo, hi):
    return [record for record in trace if lo <= record.timestamp < hi]


def test_fig5_runtime_trace(benchmark, results):
    built = results.build("2mm")
    trace = benchmark.pedantic(_run_trace, args=(built,), rounds=1, iterations=1)

    lines = [
        "",
        "Figure 5 -- 2mm execution trace with requirement switches at 100 s / 200 s",
        f"{'t[s]':>6s} {'state':>10s} {'P[W]':>7s} {'Exec[ms]':>9s} {'Thr':>4s} {'Bind':>6s}  Compiler",
    ]
    next_sample = 0.0
    for record in trace:
        if record.timestamp >= next_sample:
            lines.append(
                f"{record.timestamp:6.1f} {record.state:>10s} {record.power_w:7.1f} "
                f"{record.time_s * 1e3:9.1f} {record.threads:4d} {record.binding:>6s}  "
                f"{record.compiler}"
            )
            next_sample += 10.0
    print("\n".join(lines))

    from repro.viz.ascii import timeseries

    stamps = [record.timestamp for record in trace]
    print()
    print(timeseries(stamps, [r.power_w for r in trace], height=8, title="Power [W]"))
    print()
    print(
        timeseries(
            stamps, [r.time_s * 1e3 for r in trace], height=8, title="Exec time [ms]"
        )
    )

    efficiency_1 = _phase(trace, 20.0, SWITCH_1_S)
    performance = _phase(trace, SWITCH_1_S + 20.0, SWITCH_2_S)
    efficiency_2 = _phase(trace, SWITCH_2_S + 20.0, DURATION_S)
    assert efficiency_1 and performance and efficiency_2

    eff1_power = np.mean([r.power_w for r in efficiency_1])
    perf_power = np.mean([r.power_w for r in performance])
    eff2_power = np.mean([r.power_w for r in efficiency_2])
    eff1_time = np.mean([r.time_s for r in efficiency_1])
    perf_time = np.mean([r.time_s for r in performance])

    # performance phase: more power, less time (the paper's visual)
    assert perf_power > eff1_power + 20.0
    assert perf_time < eff1_time * 0.8
    # the two efficiency phases agree with each other
    assert abs(eff1_power - eff2_power) < 8.0
    # power stays within the paper's measured envelope (~80-145 W)
    powers = [record.power_w for record in trace]
    assert min(powers) > 55.0 and max(powers) < 160.0
    # the configuration visibly switches at both boundaries
    assert (efficiency_1[-1].compiler, efficiency_1[-1].threads) != (
        performance[-1].compiler,
        performance[-1].threads,
    )
    assert (performance[-1].threads != efficiency_2[-1].threads) or (
        performance[-1].compiler != efficiency_2[-1].compiler
    )


def test_fig5_adaptation_is_quick(results):
    """After a requirement switch the new configuration settles within
    a few invocations (mARGOt reacts at the next update call).

    Records are selected by their *state* label: the invocation that
    straddles the 100 s boundary started under the old policy and
    rightly carries its configuration.
    """
    built = results.build("2mm")
    trace = _run_trace(built)
    performance = [r for r in trace if r.state == "Throughput"]
    settled = performance[len(performance) // 2]
    assert performance[0].threads == settled.threads
    assert performance[0].compiler == settled.compiler


def test_fig5_efficiency_metric_actually_improves(results):
    """The efficiency phase wins on the metric it optimizes (Thr/W^2)
    and on power footprint.

    Note: it does NOT necessarily win on energy *per invocation* —
    race-to-idle means the full-machine configuration amortizes idle
    power over a much shorter run.  Thr/W^2 deliberately over-weights
    instantaneous power draw, which is why the paper uses it for
    power-constrained energy-aware execution.
    """
    built = results.build("2mm")
    trace = _run_trace(built)
    eff = [r for r in trace if r.state == "Thr/W^2" and 20.0 <= r.timestamp < SWITCH_1_S]
    perf = [r for r in trace if r.state == "Throughput"]
    eff_score = np.mean([(1.0 / r.time_s) / r.power_w**2 for r in eff])
    perf_score = np.mean([(1.0 / r.time_s) / r.power_w**2 for r in perf])
    assert eff_score > perf_score
    assert np.mean([r.power_w for r in eff]) < np.mean([r.power_w for r in perf]) - 30.0
