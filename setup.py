"""Setup shim: enables legacy editable installs on offline machines.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs fail; with this shim ``pip install -e .``
falls back to ``setup.py develop`` which works offline.
"""

from setuptools import setup

setup()
