#!/usr/bin/env python3
"""A tour of the LARA source transformation (the paper's Figure 2).

Shows how the application code evolves from pure functional C (a) to
the multiversioned code with the dispatch wrapper (b) and finally to
the adaptive code with the mARGOt API weaved in (c) — all without
touching the original source by hand.

Run:  python examples/weaving_tour.py
"""

from repro.cir import parse, to_source, logical_lines
from repro.gcc.flags import FlagConfiguration, OptLevel
from repro.lara.strategies.autotuner import AutotunerStrategy
from repro.lara.strategies.multiversioning import MultiversioningStrategy, VersionSpec
from repro.lara.weaver import Weaver
from repro.machine.openmp import BindingPolicy

ORIGINAL = """
#include <stdio.h>
#define N 1024
#define DATA_TYPE double

static DATA_TYPE A[N][N];
static DATA_TYPE x[N];
static DATA_TYPE y[N];

void kernel_gemv(int n, DATA_TYPE alpha)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
  {
    y[i] = 0.0;
    for (j = 0; j < n; j++)
      y[i] += alpha * A[i][j] * x[j];
  }
}

int main(int argc, char **argv)
{
  int n = N;
  while (argc > 1)
    kernel_gemv(n, 1.5);
  return 0;
}
"""


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    unit = parse(ORIGINAL, name="gemv.c")
    banner("(a) original code — pure functional description")
    print(to_source(unit))
    print(f"[{logical_lines(unit)} logical lines]")

    weaver = Weaver(unit)
    versions = [
        VersionSpec(FlagConfiguration(OptLevel.O2), BindingPolicy.CLOSE),
        VersionSpec(FlagConfiguration(OptLevel.O3), BindingPolicy.SPREAD),
    ]
    results = MultiversioningStrategy(versions).apply(weaver, ["kernel_gemv"])

    banner("(b) after Multiversioning — clones, GCC pragmas, wrapper")
    print(to_source(weaver.unit))

    AutotunerStrategy().apply(weaver, [results["kernel_gemv"].wrapper])
    banner("(c) after Autotuner — mARGOt init/update/start/stop/log weaved")
    print(to_source(weaver.unit))
    print(
        f"[{logical_lines(weaver.unit)} logical lines; "
        f"{weaver.metrics.attributes_checked} attributes checked, "
        f"{weaver.metrics.actions_performed} actions performed]"
    )


if __name__ == "__main__":
    main()
