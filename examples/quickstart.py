#!/usr/bin/env python3
"""Quickstart: turn a plain Polybench kernel into an adaptive application.

This walks the whole SOCRATES pipeline on 2mm:

1. build the adaptive application (Milepost -> COBAYN -> LARA weaving
   -> compilation of all versions -> mARGOt profiling DSE);
2. define two application requirements (energy-efficient Thr/W^2 and
   plain throughput);
3. run a handful of autotuned kernel invocations under each and watch
   the selected configuration change.

Run:  python examples/quickstart.py
"""

from repro import SocratesToolflow, load_benchmark
from repro.margot.state import (
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
)


def main() -> None:
    print("Building the adaptive 2mm application (this runs the full toolflow)...")
    flow = SocratesToolflow(dse_repetitions=3, thread_counts=[1, 2, 4, 8, 16, 24, 32])
    result = flow.build(load_benchmark("2mm"))

    print("\nCOBAYN suggested these custom flag combinations (CF1..CF4):")
    for index, config in enumerate(result.custom_flags, start=1):
        print(f"  CF{index}: {config.label}")

    report = result.weaving_report
    print(
        f"\nLARA weaving: {report.original_loc} logical lines became "
        f"{report.weaved_loc} ({report.attributes} attributes checked, "
        f"{report.actions} actions performed, bloat {report.bloat:.2f})"
    )
    print(f"DSE profiled {len(result.exploration.knowledge)} operating points.")

    app = result.adaptive
    app.add_state(
        OptimizationState("efficiency", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("performance", rank=maximize_throughput()))

    print("\n-- energy-efficient policy (maximize Thr/W^2) --")
    for _ in range(3):
        record = app.run_once()
        print(
            f"  t={record.timestamp:6.2f}s  {record.time_s * 1e3:7.1f} ms  "
            f"{record.power_w:6.1f} W  threads={record.threads:2d} "
            f"bind={record.binding:6s} {record.compiler}"
        )

    app.switch_state("performance")
    print("\n-- performance policy (maximize throughput) --")
    for _ in range(3):
        record = app.run_once()
        print(
            f"  t={record.timestamp:6.2f}s  {record.time_s * 1e3:7.1f} ms  "
            f"{record.power_w:6.1f} W  threads={record.threads:2d} "
            f"bind={record.binding:6s} {record.compiler}"
        )

    print("\nFirst lines of the weaved adaptive source:")
    for line in result.adaptive_source.splitlines()[:16]:
        print(f"  {line}")
    print("  ...")


if __name__ == "__main__":
    main()
