#!/usr/bin/env python3
"""Power capping: keep a stencil solver under a shrinking power budget.

Scenario: jacobi-2d runs continuously in a datacenter node.  An
external power-management event (e.g. a rack-level cap) lowers the
node's budget from 130 W to 90 W and later to 70 W.  The weaved mARGOt
layer re-selects the kernel configuration so the *measured* power
stays under the cap while execution time degrades as little as
possible — nobody touches the application code.

This also demonstrates functional validation: the knobs change only
extra-functional behaviour, so the numpy reference output of the
kernel is identical regardless of the selected configuration.

Run:  python examples/power_capping.py
"""

import numpy as np

from repro import SocratesToolflow, load_benchmark
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import Constraint, OptimizationState, minimize_time


def main() -> None:
    app_def = load_benchmark("jacobi-2d")
    print("Building the adaptive jacobi-2d application...")
    flow = SocratesToolflow(dse_repetitions=3, thread_counts=[1, 2, 4, 8, 12, 16, 24, 32])
    result = flow.build(app_def)
    app = result.adaptive

    budget_goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 130.0)
    state = OptimizationState("capped", rank=minimize_time())
    state.add_constraint(Constraint(budget_goal))
    app.add_state(state, activate=True)

    print(f"\n{'cap[W]':>7s} {'t[s]':>7s} {'Exec[ms]':>9s} {'P[W]':>7s} {'Thr':>4s} {'Bind':>6s}  Compiler")
    for cap in (130.0, 130.0, 90.0, 90.0, 90.0, 70.0, 70.0, 70.0):
        budget_goal.value = cap  # the external power-management event
        record = app.run_once()
        marker = "OK " if record.power_w <= cap * 1.05 else "HOT"
        print(
            f"{cap:7.0f} {record.timestamp:7.2f} {record.time_s * 1e3:9.1f} "
            f"{record.power_w:7.1f} {record.threads:4d} {record.binding:>6s}  "
            f"{record.compiler}  [{marker}]"
        )

    # -- functional equivalence: output does not depend on the knobs ------
    print("\nValidating o = f(i, knobs) is knob-independent...")
    rng = np.random.default_rng(42)
    inputs = app_def.make_inputs(rng, scale=0.02)
    reference = app_def.reference(inputs)
    again = app_def.reference(inputs)
    for key in reference:
        np.testing.assert_array_equal(reference[key], again[key])
    print(
        f"  jacobi-2d output checksum {float(np.sum(reference['A'])):.6f} — "
        "identical under every configuration (knobs only change EFPs)."
    )


if __name__ == "__main__":
    main()
