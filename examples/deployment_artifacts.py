#!/usr/bin/env python3
"""Deployment artifacts: everything a production rollout would ship.

A real SOCRATES deployment separates design time from run time:

* **design time** (this toolchain, once per platform): weave the
  application, profile the design space, persist the knowledge;
* **run time** (the target machine, forever): the adaptive binary built
  from the weaved source + the generated ``margot.h``.

This example produces the full artifact set for 2mm into
``./socrates_2mm_artifacts/``:

  ``adaptive_2mm.c``   the weaved source (clones, wrapper, mARGOt calls)
  ``margot.h``         the generated adaptation layer (margot_heel role)
  ``2mm.oplist.json``  the profiled knowledge base
  ``margot.json``      the requirements configuration
  ``trace.csv``        a smoke-run trace of the assembled application

Run:  python examples/deployment_artifacts.py
"""

import json
from pathlib import Path

from repro import Phase, Scenario, SocratesToolflow, load_benchmark
from repro.core.trace import trace_to_csv
from repro.margot.config import apply_configuration, load_config
from repro.margot.oplist import save_knowledge

REQUIREMENTS = {
    "kernel": "2mm",
    "states": [
        {
            "name": "efficiency",
            "rank": {
                "direction": "maximize",
                "composition": "geometric",
                "fields": [
                    {"metric": "throughput", "coefficient": 1.0},
                    {"metric": "power", "coefficient": -2.0},
                ],
            },
        },
        {
            "name": "performance",
            "rank": {
                "direction": "maximize",
                "fields": [{"metric": "throughput"}],
            },
        },
    ],
    "active_state": "efficiency",
}


def main() -> None:
    out_dir = Path("socrates_2mm_artifacts")
    out_dir.mkdir(exist_ok=True)

    print("Design time: building the adaptive 2mm application...")
    flow = SocratesToolflow(dse_repetitions=3, thread_counts=[1, 2, 4, 8, 16, 24, 32])
    result = flow.build(load_benchmark("2mm"))
    config = load_config(REQUIREMENTS)

    (out_dir / "adaptive_2mm.c").write_text(result.adaptive_source)
    (out_dir / "margot.h").write_text(result.margot_header(config.states))
    save_knowledge(result.exploration.knowledge, out_dir / "2mm.oplist.json")
    (out_dir / "margot.json").write_text(json.dumps(REQUIREMENTS, indent=2))

    print("Run time: smoke-running the assembled application (20 virtual s)...")
    app = result.adaptive
    apply_configuration(config, app)
    scenario = Scenario(
        phases=[Phase(0.0, "efficiency"), Phase(10.0, "performance")],
        duration_s=20.0,
    )
    records = scenario.run(app)
    trace_to_csv(records, out_dir / "trace.csv")

    print(f"\nArtifacts in {out_dir}/:")
    for path in sorted(out_dir.iterdir()):
        lines = path.read_text().count("\n")
        print(f"  {path.name:20s} {path.stat().st_size:8d} bytes, {lines:5d} lines")

    eff = [r for r in records if r.state == "efficiency"]
    perf = [r for r in records if r.state == "performance"]
    print(
        f"\nSmoke run: efficiency {sum(r.power_w for r in eff)/len(eff):.0f} W avg, "
        f"performance {sum(r.power_w for r in perf)/len(perf):.0f} W avg "
        f"({len(records)} invocations total)."
    )


if __name__ == "__main__":
    main()
