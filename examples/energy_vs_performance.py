#!/usr/bin/env python3
"""Energy-aware phases: a batch job alternates service levels (syr2k).

Scenario: a nightly analytics job runs syr2k kernels for a long time.
During the "green window" (cheap, renewable-heavy electricity) the
operator wants maximum energy efficiency (Thr/W^2); when a deadline
approaches, the job flips to full throughput; afterwards it returns to
the efficient policy.  This is the paper's Figure 5 experiment run as
a user-facing scenario on a different benchmark, with an energy bill
summary at the end.

Run:  python examples/energy_vs_performance.py
"""

import numpy as np

from repro import Phase, Scenario, SocratesToolflow, load_benchmark
from repro.margot.state import (
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
)


def main() -> None:
    print("Building the adaptive syr2k application...")
    flow = SocratesToolflow(dse_repetitions=3, thread_counts=[1, 2, 4, 8, 16, 24, 32])
    result = flow.build(load_benchmark("syr2k"))
    app = result.adaptive

    app.add_state(
        OptimizationState("green", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("deadline", rank=maximize_throughput()))

    scenario = Scenario(
        phases=[Phase(0.0, "green"), Phase(20.0, "deadline"), Phase(40.0, "green")],
        duration_s=60.0,
    )
    print("Running a 60 s (virtual) trace: green -> deadline (20 s) -> green (40 s)\n")
    trace = scenario.run(app)

    print(f"{'t[s]':>6s} {'state':>9s} {'P[W]':>7s} {'Exec[ms]':>9s} {'Thr':>4s} {'Bind':>7s}")
    next_sample = 0.0
    for record in trace:
        if record.timestamp >= next_sample:
            print(
                f"{record.timestamp:6.1f} {record.state:>9s} {record.power_w:7.1f} "
                f"{record.time_s * 1e3:9.1f} {record.threads:4d} {record.binding:>7s}"
            )
            next_sample += 5.0

    def summarize(name):
        records = [r for r in trace if r.state == name]
        power = float(np.mean([r.power_w for r in records]))
        throughput = float(np.mean([1.0 / r.time_s for r in records]))
        thr_per_w2 = float(np.mean([(1.0 / r.time_s) / r.power_w**2 for r in records]))
        return len(records), power, throughput, thr_per_w2

    print("\nPolicy summary (what each rank actually optimizes):")
    print(f"  {'policy':9s} {'invocations':>11s} {'avg P[W]':>9s} {'Thr[1/s]':>9s} {'Thr/W^2':>10s}")
    for name in ("green", "deadline"):
        count, power, throughput, thr_w2 = summarize(name)
        print(
            f"  {name:9s} {count:11d} {power:9.1f} {throughput:9.1f} {thr_w2 * 1e3:10.4f}"
        )
    _, green_p, green_t, green_e = summarize("green")
    _, dead_p, dead_t, dead_e = summarize("deadline")
    print(
        f"\nThe green policy runs at {green_p / dead_p:.2f}x the power footprint with "
        f"{green_e / dead_e:.2f}x the Thr/W^2 score; the deadline policy buys "
        f"{dead_t / green_t:.2f}x throughput by burning that power headroom."
    )


if __name__ == "__main__":
    main()
