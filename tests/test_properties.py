"""Property-based tests (hypothesis) on core data structures and
invariants: printer/parser round trips, Pareto laws, Bayesian-network
probability axioms, monitor statistics, OpenMP placement invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cir import parse, to_source
from repro.cir.printer import expr_to_source
from repro.dse.pareto import pareto_filter
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.topology import default_machine
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.knowledge import MetricStats, OperatingPoint
from repro.margot.monitor import Monitor

# ---------------------------------------------------------------------------
# expression grammar for printer/parser round trips
# ---------------------------------------------------------------------------

_identifiers = st.sampled_from(["a", "b", "c", "x", "n", "alpha"])
_int_literals = st.integers(min_value=0, max_value=999).map(str)
_binops = st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "&&", "||"])


def _expressions(depth=3):
    if depth == 0:
        return st.one_of(_identifiers, _int_literals)
    sub = _expressions(depth - 1)
    return st.one_of(
        _identifiers,
        _int_literals,
        st.tuples(sub, _binops, sub).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(_identifiers, sub).map(lambda t: f"{t[0]}[{t[1]}]"),
        st.tuples(_identifiers, sub).map(lambda t: f"{t[0]}({t[1]})"),
        sub.map(lambda e: f"-({e})"),
        st.tuples(sub, sub, sub).map(lambda t: f"(({t[0]}) ? ({t[1]}) : ({t[2]}))"),
    )


class TestPrinterRoundTrip:
    @given(_expressions())
    @settings(max_examples=120, deadline=None)
    def test_expression_round_trip_is_fixed_point(self, text):
        """parse -> print -> parse -> print must be a fixed point."""
        unit1 = parse(f"void f(void) {{ x = {text}; }}")
        printed1 = to_source(unit1)
        unit2 = parse(printed1)
        assert to_source(unit2) == printed1

    @given(_expressions())
    @settings(max_examples=60, deadline=None)
    def test_expression_semantics_preserved(self, text):
        """Printed expressions keep the same tree shape when reparsed."""
        expr1 = parse(f"void f(void) {{ x = {text}; }}").function("f").body.stmts[0].expr.rhs
        printed = expr_to_source(expr1)
        expr2 = parse(f"void f(void) {{ x = {printed}; }}").function("f").body.stmts[0].expr.rhs
        assert expr_to_source(expr2) == printed

    @given(
        st.lists(
            st.sampled_from(["x = 1;", "y += 2;", "if (a) b = 1;", "for (i = 0; i < 9; i++) s += i;", "break;"]),
            min_size=0,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_statement_sequences_round_trip(self, stmts):
        body = "\n".join(stmts)
        source = f"void f(int a, int i, int s) {{ for (;;) {{ {body} }} }}"
        printed = to_source(parse(source))
        assert to_source(parse(printed)) == printed


# ---------------------------------------------------------------------------
# pragma round trips: woven pragma text must survive print -> lex -> parse
# ---------------------------------------------------------------------------

_omp_clauses = st.lists(
    st.sampled_from(
        [
            "private(i, j)",
            "firstprivate(a)",
            "lastprivate(b)",
            "shared(A)",
            "reduction(+:s)",
            "reduction(*:p)",
            "num_threads(__socrates_num_threads)",
            "proc_bind(close)",
            "proc_bind(spread)",
            "schedule(static)",
        ]
    ),
    max_size=4,
    unique=True,
)


def _pragma_texts(unit):
    from repro.cir import ast as cir_ast
    from repro.cir.visitor import walk

    texts = []
    for decl in unit.decls:
        if isinstance(decl, cir_ast.FunctionDef):
            texts.extend(p.text for p in decl.pragmas)
            texts.extend(
                n.text for n in walk(decl.body) if isinstance(n, cir_ast.Pragma)
            )
    return texts


class TestPragmaRoundTrip:
    @given(_omp_clauses)
    @settings(max_examples=60, deadline=None)
    def test_omp_pragma_clauses_survive_reparsing(self, clauses):
        pragma = " ".join(["omp parallel for"] + clauses)
        source = (
            f"void f(int n) {{\n"
            f"  int i;\n"
            f"  #pragma {pragma}\n"
            f"  for (i = 0; i < n; i++)\n"
            f"    g(i);\n"
            f"}}\n"
        )
        unit = parse(source)
        assert _pragma_texts(unit) == [pragma]
        reparsed = parse(to_source(unit))
        assert _pragma_texts(reparsed) == [pragma]
        assert to_source(reparsed) == to_source(unit)

    @pytest.mark.parametrize("name", ["mvt", "atax"])
    def test_woven_pragmas_survive_reparsing(self, name):
        """The weaver's pragmas (GCC optimize, num_threads/proc_bind
        clauses) are printable and re-parse to the identical text."""
        from repro.gcc.flags import paper_custom_flags, standard_levels
        from repro.lara.metrics import weave_benchmark
        from repro.polybench.suite import load

        configs = standard_levels() + paper_custom_flags()
        _, weaver = weave_benchmark(load(name), configs)
        printed = to_source(weaver.unit)
        reparsed = parse(printed)
        original_texts = sorted(_pragma_texts(weaver.unit))
        reparsed_texts = sorted(_pragma_texts(reparsed))
        assert original_texts == reparsed_texts
        assert any("num_threads(__socrates_num_threads)" in t for t in reparsed_texts)
        assert any("proc_bind(" in t for t in reparsed_texts)
        assert any(t.startswith("GCC optimize") for t in reparsed_texts)
        # and printing is a fixed point
        assert to_source(reparsed) == printed


# ---------------------------------------------------------------------------
# Pareto laws
# ---------------------------------------------------------------------------

_metric_points = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        st.floats(min_value=1.0, max_value=200, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def _as_ops(pairs):
    return [
        OperatingPoint(
            knobs={"id": index},
            metrics={"time": MetricStats(t), "power": MetricStats(p)},
        )
        for index, (t, p) in enumerate(pairs)
    ]


class TestParetoProperties:
    OBJECTIVES = [("time", False), ("power", False)]

    @given(_metric_points)
    @settings(max_examples=80, deadline=None)
    def test_front_nonempty_and_subset(self, pairs):
        points = _as_ops(pairs)
        front = pareto_filter(points, self.OBJECTIVES)
        assert front
        assert all(point in points for point in front)

    @given(_metric_points)
    @settings(max_examples=80, deadline=None)
    def test_front_is_idempotent(self, pairs):
        points = _as_ops(pairs)
        once = pareto_filter(points, self.OBJECTIVES)
        twice = pareto_filter(once, self.OBJECTIVES)
        assert [p.knobs["id"] for p in once] == [p.knobs["id"] for p in twice]

    @given(_metric_points)
    @settings(max_examples=80, deadline=None)
    def test_no_member_dominates_another(self, pairs):
        front = pareto_filter(_as_ops(pairs), self.OBJECTIVES)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    a.metric("time").mean <= b.metric("time").mean
                    and a.metric("power").mean <= b.metric("power").mean
                    and (
                        a.metric("time").mean < b.metric("time").mean
                        or a.metric("power").mean < b.metric("power").mean
                    )
                )
                assert not dominates

    @given(_metric_points)
    @settings(max_examples=60, deadline=None)
    def test_global_minima_always_on_front(self, pairs):
        points = _as_ops(pairs)
        front = pareto_filter(points, self.OBJECTIVES)
        fastest = min(points, key=lambda p: (p.metric("time").mean, p.metric("power").mean))
        front_keys = {
            (p.metric("time").mean, p.metric("power").mean) for p in front
        }
        assert (
            fastest.metric("time").mean,
            fastest.metric("power").mean,
        ) in front_keys


# ---------------------------------------------------------------------------
# monitor statistics
# ---------------------------------------------------------------------------


class TestMonitorProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_stats_match_numpy_on_window(self, values, window):
        monitor = Monitor("m", window_size=window)
        for value in values:
            monitor.push(value)
        tail = values[-window:]
        assert monitor.average() == pytest.approx(np.mean(tail), rel=1e-9, abs=1e-9)
        assert monitor.max() == max(tail)
        assert monitor.min() == min(tail)
        assert len(monitor) == len(tail)

    @given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_stddev_non_negative(self, values):
        monitor = Monitor("m", window_size=64)
        for value in values:
            monitor.push(value)
        assert monitor.stddev() >= 0.0


# ---------------------------------------------------------------------------
# OpenMP placement invariants
# ---------------------------------------------------------------------------


class TestPlacementProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.sampled_from([BindingPolicy.CLOSE, BindingPolicy.SPREAD]),
    )
    @settings(max_examples=120, deadline=None)
    def test_every_thread_assigned_to_valid_place(self, threads, policy):
        omp = OpenMPRuntime(default_machine())
        placement = omp.place(threads, policy)
        assert placement.num_threads == threads
        valid = set(default_machine().core_places())
        assert all(place in valid for place in placement.assignments)

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_no_core_oversubscribed_within_capacity(self, threads):
        omp = OpenMPRuntime(default_machine())
        for policy in BindingPolicy:
            placement = omp.place(threads, policy)
            per_core = {}
            for place in placement.assignments:
                per_core[place] = per_core.get(place, 0) + 1
            assert max(per_core.values()) <= 1  # <=16 threads: no SMT doubling

    @given(st.integers(min_value=17, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_smt_never_exceeds_two_per_core(self, threads):
        omp = OpenMPRuntime(default_machine())
        for policy in BindingPolicy:
            placement = omp.place(threads, policy)
            per_core = {}
            for place in placement.assignments:
                per_core[place] = per_core.get(place, 0) + 1
            assert max(per_core.values()) <= 2

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_spread_socket_balance(self, threads):
        omp = OpenMPRuntime(default_machine())
        placement = omp.place(threads, BindingPolicy.SPREAD)
        per_socket = placement.threads_per_socket()
        assert abs(per_socket.get(0, 0) - per_socket.get(1, 0)) <= 1


# ---------------------------------------------------------------------------
# goals
# ---------------------------------------------------------------------------


class TestGoalProperties:
    @given(
        st.sampled_from(list(ComparisonFunction)),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=120, deadline=None)
    def test_violation_zero_iff_satisfied(self, comparison, target, observed):
        goal = Goal("m", comparison, target)
        if goal.check(observed):
            assert goal.violation(observed) == 0.0
        else:
            assert goal.violation(observed) > 0.0


# ---------------------------------------------------------------------------
# streaming SLO alerting: backend independence + flight-ring ordering
# ---------------------------------------------------------------------------

from repro.core.scenario import Phase, Scenario  # noqa: E402
from repro.core.toolflow import SocratesToolflow  # noqa: E402
from repro.engine import ProcessPoolBackend  # noqa: E402
from repro.margot.state import (  # noqa: E402
    Constraint,
    OptimizationState,
    maximize_throughput,
)
from repro.obs import Observability  # noqa: E402
from repro.obs.alerts import AlertPolicy  # noqa: E402
from repro.obs.energy import EnergyBudget  # noqa: E402
from repro.obs.flight import FlightRecorder  # noqa: E402
from repro.polybench.suite import load as load_app  # noqa: E402


def _alerting_run(backend=None):
    """A seeded power-cap-violating run; returns the alert engine."""
    policy = AlertPolicy(
        budgets=(EnergyBudget("package_cap", power_w=40.0),),
        burn_short_s=0.1,
        burn_long_s=0.5,
    )
    obs = Observability(alerting=True, alert_policy=policy)
    flow = SocratesToolflow(
        machine="biglittle_8p8e",
        dse_repetitions=1,
        thread_counts=[1, 2],
        backend=backend,
        obs=obs,
    )
    app = flow.build(load_app("mvt")).adaptive
    app.add_state(
        OptimizationState("Throughput", rank=maximize_throughput()), activate=True
    )
    capped = OptimizationState("PowerCap", rank=maximize_throughput())
    capped.add_constraint(
        Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 22.0))
    )
    app.add_state(capped)
    scenario = Scenario(
        phases=[Phase(0.0, "Throughput"), Phase(0.66, "PowerCap"), Phase(1.33, "Throughput")],
        duration_s=2.0,
    )
    records = scenario.run(app)
    return obs.alerts, records


class TestAlertBackendIndependence:
    """The detector verdicts are a pure function of the seeded virtual
    timeline: evaluating the DSE on a process pool instead of serially
    must not move, add, or drop a single alert."""

    def test_verdicts_identical_across_backends(self):
        serial_engine, serial_records = _alerting_run()
        pool_engine, pool_records = _alerting_run(ProcessPoolBackend(max_workers=2))
        assert serial_records == pool_records
        assert [a.as_dict() for a in serial_engine.alerts] == [
            a.as_dict() for a in pool_engine.alerts
        ]
        assert serial_engine.alerts  # the scenario does fire
        assert [b.incident_id for b in serial_engine.incidents] == [
            b.incident_id for b in pool_engine.incidents
        ]
        # the canonical form (wall-clock span timings reduced out) and
        # the root-cause attribution must agree exactly
        from repro.obs.flight import incident_fingerprint

        assert [incident_fingerprint(b.as_dict()) for b in serial_engine.incidents] == [
            incident_fingerprint(b.as_dict()) for b in pool_engine.incidents
        ]
        assert [b.attribution for b in serial_engine.incidents] == [
            b.attribution for b in pool_engine.incidents
        ]


class TestFlightRingOrdering:
    """The flight ring is a virtual-time data structure: entries leave
    in exactly the order they arrived, and time never runs backwards."""

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=64,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_eviction_preserves_arrival_order(self, times, capacity):
        times = sorted(times)
        evicted = []
        flight = FlightRecorder(
            capacity=capacity, on_evict=lambda event: evicted.append(event.t)
        )
        for t in times:
            flight.record_span(t, object())
        kept = [event.t for event in flight.events("span")]
        assert evicted + kept == times
        assert len(kept) == min(capacity, len(times))
        assert evicted == sorted(evicted)

    @given(
        st.lists(
            # millisecond grid: any inversion is >= 1e-3, far beyond
            # the bus's 1e-9 float tolerance, so accept/reject is crisp
            st.integers(min_value=0, max_value=10**6).map(lambda n: n / 1000.0),
            min_size=2,
            max_size=32,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_out_of_order_arrival_is_rejected(self, times):
        has_inversion = any(b < a for a, b in zip(times, times[1:]))
        flight = FlightRecorder(capacity=128)
        if not has_inversion:
            for t in times:
                flight.record_energy(t, object())
            assert flight.recorded == len(times)
        else:
            with pytest.raises(ValueError, match="virtual-time order"):
                for t in times:
                    flight.record_energy(t, object())
