"""Integration tests: end-to-end toolflow runs and the qualitative
shapes of the paper's three experiments (the quantitative harnesses
live in benchmarks/)."""

import numpy as np
import pytest

from repro.core.scenario import Phase, Scenario
from repro.dse.pareto import pareto_filter
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import (
    Constraint,
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)


class TestToolflowEndToEnd:
    def test_full_build_produces_consistent_artifacts(self, built_2mm):
        assert built_2mm.app.name == "2mm"
        assert len(built_2mm.compiler_configs) == 8
        assert built_2mm.exploration.coverage == 1.0
        assert built_2mm.weaving_report.bloat > 0

    def test_second_app_shares_trained_tuner(self, toolflow):
        """Leave-one-out caches: building another app must reuse the
        executor/compiler and still produce a valid result."""
        from repro.polybench.suite import load

        result = toolflow.build(load("mvt"), training_apps=None)
        assert len(result.custom_flags) == 4
        assert len(result.exploration.knowledge) > 0


class TestFigure3Shape:
    """No one-fits-all configuration: the Pareto front of each kernel
    spans a wide power/throughput range."""

    def test_pareto_spread_is_wide(self, built_2mm):
        front = pareto_filter(
            built_2mm.exploration.knowledge.points(),
            [("throughput", True), ("power", False)],
        )
        assert len(front) >= 5
        powers = np.array([p.metric("power").mean for p in front])
        throughputs = np.array([p.metric("throughput").mean for p in front])
        assert powers.max() / powers.min() > 1.5
        assert throughputs.max() / throughputs.min() > 2.0

    def test_front_mixes_thread_counts(self, built_2mm):
        front = pareto_filter(
            built_2mm.exploration.knowledge.points(),
            [("throughput", True), ("power", False)],
        )
        threads = {p.knob("threads") for p in front}
        assert len(threads) >= 3


class TestFigure4Shape:
    """Static power-budget autotuning: execution time falls (weakly)
    as the budget grows, and the selected knobs jump around."""

    @pytest.fixture()
    def budget_sweep(self, built_2mm):
        from repro.margot.asrtm import ApplicationRuntimeManager

        asrtm = ApplicationRuntimeManager(built_2mm.exploration.knowledge)
        goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 45.0)
        state = OptimizationState("budget", rank=minimize_time())
        state.add_constraint(Constraint(goal))
        asrtm.add_state(state)
        rows = []
        for budget in np.linspace(45, 140, 12):
            goal.value = float(budget)
            point = asrtm.update()
            rows.append((budget, point))
        return rows

    def test_time_monotone_nonincreasing(self, budget_sweep):
        times = [point.metric("time").mean for _, point in budget_sweep]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.001

    def test_power_within_budget(self, budget_sweep):
        for budget, point in budget_sweep:
            assert point.metric("power").mean <= budget * 1.02

    def test_threads_grow_with_budget(self, budget_sweep):
        first = budget_sweep[0][1].knob("threads")
        last = budget_sweep[-1][1].knob("threads")
        assert last > first

    def test_selected_compilers_vary(self, budget_sweep):
        compilers = {point.knob("compiler") for _, point in budget_sweep}
        threads = {point.knob("threads") for _, point in budget_sweep}
        # "no clear trend in the selected software-knobs": several
        # distinct configurations appear across the sweep
        assert len(threads) >= 4
        assert len(compilers) >= 1


class TestFigure5Shape:
    """Runtime adaptation: the performance phase draws more power and
    runs faster than the energy-efficient phases around it."""

    @pytest.fixture()
    def trace(self, built_2mm):
        from repro.core.adaptive import AdaptiveApplication
        from repro.machine.power import RaplMeter

        base = built_2mm.adaptive
        app = AdaptiveApplication(
            name="2mm",
            versions=base._versions,
            knowledge=built_2mm.exploration.knowledge,
            executor=base._executor,
            omp=base._omp,
            meter=RaplMeter(base._executor.power_model, seed=11),
        )
        app.add_state(
            OptimizationState(
                "efficiency", rank=maximize_throughput_per_watt_squared()
            ),
            activate=True,
        )
        app.add_state(OptimizationState("performance", rank=maximize_throughput()))
        scenario = Scenario(
            phases=[
                Phase(0.0, "efficiency"),
                Phase(30.0, "performance"),
                Phase(60.0, "efficiency"),
            ],
            duration_s=90.0,
        )
        return scenario.run(app)

    def _phase(self, trace, lo, hi):
        return [r for r in trace if lo <= r.timestamp < hi]

    def test_all_phases_executed(self, trace):
        assert {record.state for record in trace} == {"efficiency", "performance"}

    def test_performance_phase_faster_and_hotter(self, trace):
        eff = self._phase(trace, 5.0, 30.0)
        perf = self._phase(trace, 35.0, 60.0)
        eff_power = np.mean([r.power_w for r in eff])
        perf_power = np.mean([r.power_w for r in perf])
        eff_time = np.mean([r.time_s for r in eff])
        perf_time = np.mean([r.time_s for r in perf])
        assert perf_power > eff_power + 20.0
        assert perf_time < eff_time

    def test_knobs_switch_at_boundaries(self, trace):
        eff = self._phase(trace, 5.0, 30.0)
        perf = self._phase(trace, 35.0, 60.0)
        assert (eff[-1].compiler, eff[-1].threads) != (
            perf[-1].compiler,
            perf[-1].threads,
        )

    def test_efficiency_phases_agree(self, trace):
        eff1 = self._phase(trace, 5.0, 30.0)
        eff2 = self._phase(trace, 65.0, 90.0)
        assert eff1[-1].threads == eff2[-1].threads
        assert abs(np.mean([r.power_w for r in eff1]) - np.mean([r.power_w for r in eff2])) < 8.0

    def test_power_envelope_matches_paper(self, trace):
        powers = [r.power_w for r in trace]
        assert min(powers) > 55.0
        assert max(powers) < 160.0


class TestEnergyBudget:
    """Extension scenario from DESIGN.md: a per-invocation energy cap
    (joules) instead of a power cap."""

    def test_energy_cap_sweep_monotone(self, built_2mm):
        from repro.margot.asrtm import ApplicationRuntimeManager

        knowledge = built_2mm.exploration.knowledge
        low, high = knowledge.metric_bounds("energy")
        asrtm = ApplicationRuntimeManager(knowledge)
        goal = Goal("energy", ComparisonFunction.LESS_OR_EQUAL, high)
        state = OptimizationState("joule-cap", rank=minimize_time())
        state.add_constraint(Constraint(goal))
        asrtm.add_state(state)
        times = []
        for cap in np.linspace(low * 1.05, high, 8):
            goal.value = float(cap)
            point = asrtm.update()
            assert point.metric("energy").mean <= cap * 1.02
            times.append(point.metric("time").mean)
        # tighter energy caps cost execution time (weakly)
        assert times[0] >= times[-1]

    def test_energy_cap_excludes_hungry_configurations(self, built_2mm):
        """A tight joule cap must actually filter: the picked OP sits
        in the cap-feasible subset, which excludes most of the space.
        (Race-to-idle means the fastest configuration is often also the
        most energy-frugal, so the *selection* may coincide with the
        unconstrained one — the filter itself is what we verify.)"""
        from repro.margot.asrtm import ApplicationRuntimeManager

        knowledge = built_2mm.exploration.knowledge
        low, high = knowledge.metric_bounds("energy")
        cap = low * 1.2
        feasible = [
            point for point in knowledge if point.metric("energy").mean <= cap
        ]
        assert 0 < len(feasible) < len(knowledge) // 2
        asrtm = ApplicationRuntimeManager(knowledge)
        state = OptimizationState("joule-cap", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("energy", ComparisonFunction.LESS_OR_EQUAL, cap))
        )
        asrtm.add_state(state)
        chosen = asrtm.update()
        assert chosen.key in {point.key for point in feasible}
