"""Tests for the extension features: dataset presets, size-override
profiling, the DVFS/turbo model, and pragma parse-back."""

import pytest

from repro.gcc.flags import (
    Flag,
    FlagConfiguration,
    OptLevel,
    cobayn_space,
    parse_pragma,
)
from repro.machine.dvfs import TurboModel
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.topology import default_machine
from repro.polybench.datasets import DATASETS, PRESETS, dataset_sizes, preset_names
from repro.polybench.suite import BENCHMARK_NAMES, load
from repro.polybench.workload import WorkloadAnalysisError, profile_kernel


class TestDatasets:
    def test_all_benchmarks_covered(self):
        assert set(DATASETS) == set(BENCHMARK_NAMES)

    def test_all_presets_defined(self):
        for name, presets in DATASETS.items():
            assert set(presets) == set(PRESETS), name

    def test_large_matches_source_macros(self):
        for name in BENCHMARK_NAMES:
            app = load(name)
            assert dataset_sizes(name, "LARGE") == dict(app.sizes), name

    def test_presets_strictly_increase(self):
        for name in BENCHMARK_NAMES:
            for dim in DATASETS[name]["MINI"]:
                values = [DATASETS[name][preset][dim] for preset in PRESETS]
                assert values == sorted(values), (name, dim)
                assert values[0] < values[-1], (name, dim)

    def test_unknown_app_and_preset(self):
        with pytest.raises(KeyError):
            dataset_sizes("gemm", "LARGE")
        with pytest.raises(KeyError):
            dataset_sizes("2mm", "GIGANTIC")

    def test_preset_case_insensitive(self):
        assert dataset_sizes("2mm", "medium") == dataset_sizes("2mm", "MEDIUM")

    def test_preset_names(self):
        assert preset_names() == list(PRESETS)


class TestSizeOverrides:
    def test_profile_scales_with_dataset(self):
        app = load("2mm")
        large = profile_kernel(app)
        medium = profile_kernel(app, size_overrides=dataset_sizes("2mm", "MEDIUM"))
        assert medium.flops < large.flops / 20
        assert medium.working_set_bytes < large.working_set_bytes

    def test_override_affects_trip_counts_only(self):
        app = load("2mm")
        medium = profile_kernel(app, size_overrides=dataset_sizes("2mm", "MEDIUM"))
        assert medium.max_depth == 3
        assert medium.parallel_regions == 2

    def test_unknown_macro_rejected(self):
        with pytest.raises(WorkloadAnalysisError):
            profile_kernel(load("2mm"), size_overrides={"BOGUS": 10})

    def test_mini_dataset_fits_cache(self):
        mini = profile_kernel(load("2mm"), size_overrides=dataset_sizes("2mm", "MINI"))
        assert mini.working_set_bytes < 1e5


class TestTurboModel:
    def test_single_core_fastest(self):
        machine = default_machine()
        omp = OpenMPRuntime(machine)
        turbo = TurboModel()
        f1 = turbo.frequency(machine, omp.place(1, BindingPolicy.CLOSE), False)
        f8 = turbo.frequency(machine, omp.place(8, BindingPolicy.CLOSE), False)
        assert f1 == turbo.single_core_turbo_hz
        assert f8 == turbo.all_core_turbo_hz
        assert f1 > f8 > turbo.min_hz

    def test_spread_keeps_higher_clocks(self):
        # 8 threads spread = 4 busy cores per socket -> higher turbo bin
        machine = default_machine()
        omp = OpenMPRuntime(machine)
        turbo = TurboModel()
        close = turbo.frequency(machine, omp.place(8, BindingPolicy.CLOSE), False)
        spread = turbo.frequency(machine, omp.place(8, BindingPolicy.SPREAD), False)
        assert spread > close

    def test_avx_offset_applies(self):
        machine = default_machine()
        omp = OpenMPRuntime(machine)
        turbo = TurboModel()
        scalar = turbo.frequency(machine, omp.place(4, BindingPolicy.CLOSE), False)
        vector = turbo.frequency(machine, omp.place(4, BindingPolicy.CLOSE), True)
        assert vector == pytest.approx(scalar - turbo.avx_offset_hz)

    def test_power_factor_grows_with_clock(self):
        turbo = TurboModel()
        assert turbo.power_factor(3.2e9) > turbo.power_factor(2.4e9) == 1.0

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            TurboModel(all_core_turbo_hz=3.4e9, single_core_turbo_hz=3.2e9)

    def test_executor_with_turbo_speeds_up_small_teams(self):
        from repro.gcc.compiler import Compiler

        machine = default_machine()
        omp = OpenMPRuntime(machine)
        compiled = Compiler().compile(
            profile_kernel(load("3mm")), FlagConfiguration(OptLevel.O2)
        )
        base = MachineExecutor(machine)
        boosted = MachineExecutor(machine, turbo=TurboModel())
        placement = omp.place(1, BindingPolicy.CLOSE)
        assert (
            boosted.evaluate(compiled, placement).time_s
            < base.evaluate(compiled, placement).time_s
        )

    def test_turbo_raises_power_at_full_load(self):
        from repro.gcc.compiler import Compiler

        machine = default_machine()
        omp = OpenMPRuntime(machine)
        compiled = Compiler().compile(
            profile_kernel(load("3mm")), FlagConfiguration(OptLevel.O2)
        )
        base = MachineExecutor(machine)
        boosted = MachineExecutor(machine, turbo=TurboModel())
        placement = omp.place(16, BindingPolicy.CLOSE)
        assert (
            boosted.evaluate(compiled, placement).power_w
            > base.evaluate(compiled, placement).power_w
        )


class TestPragmaParseBack:
    def test_round_trip_whole_space(self):
        for config in cobayn_space():
            assert parse_pragma(config.pragma_text) == config

    def test_accepts_bare_body(self):
        assert parse_pragma('("O2,no-ivopts")') == FlagConfiguration(
            OptLevel.O2, frozenset({Flag.NO_IVOPTS})
        )

    def test_rejects_unknown_entry(self):
        with pytest.raises(ValueError):
            parse_pragma('GCC optimize ("O2,frobnicate")')

    def test_requires_level(self):
        with pytest.raises(ValueError):
            parse_pragma('GCC optimize ("no-ivopts")')

    def test_weaved_source_pragmas_map_to_configs(self):
        """Every GCC pragma in a weaved benchmark parses back to one of
        the configurations the Multiversioning strategy was given."""
        from repro.cir import walk
        from repro.gcc.flags import paper_custom_flags, standard_levels
        from repro.lara.metrics import weave_benchmark

        configs = standard_levels() + paper_custom_flags()
        _, weaver = weave_benchmark(load("mvt"), configs)
        seen = set()
        for func in weaver.unit.functions():
            for pragma in func.pragmas:
                if pragma.is_gcc_optimize:
                    seen.add(parse_pragma(pragma.text))
        assert seen == set(configs)
