"""Tests for the mARGOt runtime autotuner."""

import pytest

from repro.margot.asrtm import ApplicationRuntimeManager, AsrtmError
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.knowledge import (
    KnowledgeBase,
    MetricStats,
    OperatingPoint,
    make_operating_point,
)
from repro.margot.manager import MargotManager
from repro.margot.monitor import (
    EnergyMonitor,
    Monitor,
    MonitorError,
    PowerMonitor,
    ThroughputMonitor,
    TimeMonitor,
)
from repro.margot.state import (
    Constraint,
    OptimizationState,
    Rank,
    RankComposition,
    RankDirection,
    RankField,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)


def op(threads, time, power, time_std=0.0, power_std=0.0):
    """Tiny operating-point factory over a single 'threads' knob."""
    return OperatingPoint(
        knobs={"threads": threads},
        metrics={
            "time": MetricStats(time, time_std),
            "power": MetricStats(power, power_std),
            "throughput": MetricStats(1.0 / time, 0.0),
        },
    )


@pytest.fixture
def kb():
    """Four OPs trading time against power."""
    return KnowledgeBase(
        [
            op(1, time=8.0, power=45.0),
            op(4, time=2.5, power=70.0),
            op(8, time=1.4, power=95.0),
            op(16, time=0.9, power=130.0),
        ]
    )


class TestMonitors:
    def test_circular_buffer_evicts(self):
        monitor = Monitor("m", window_size=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            monitor.push(value)
        assert len(monitor) == 3
        assert monitor.min() == 2.0

    def test_statistics(self):
        monitor = Monitor("m", window_size=10)
        for value in (2.0, 4.0, 6.0):
            monitor.push(value)
        assert monitor.average() == 4.0
        assert monitor.last() == 6.0
        assert monitor.max() == 6.0
        assert monitor.stddev() == pytest.approx(2.0)

    def test_empty_statistics_raise(self):
        monitor = Monitor("m")
        with pytest.raises(MonitorError):
            monitor.average()

    def test_single_observation_stddev_zero(self):
        monitor = Monitor("m")
        monitor.push(5.0)
        assert monitor.stddev() == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Monitor("m", window_size=0)

    def test_clear(self):
        monitor = Monitor("m")
        monitor.push(1.0)
        monitor.clear()
        assert monitor.empty

    def test_time_monitor_start_stop(self):
        monitor = TimeMonitor()
        monitor.start(now=10.0)
        elapsed = monitor.stop(now=10.5)
        assert elapsed == pytest.approx(0.5)
        assert monitor.last() == pytest.approx(0.5)

    def test_time_monitor_double_start_raises(self):
        monitor = TimeMonitor()
        monitor.start(0.0)
        with pytest.raises(MonitorError):
            monitor.start(1.0)

    def test_time_monitor_stop_without_start_raises(self):
        with pytest.raises(MonitorError):
            TimeMonitor().stop(1.0)

    def test_throughput_monitor(self):
        monitor = ThroughputMonitor(items_per_region=10.0)
        monitor.start(0.0)
        value = monitor.stop(2.0)
        assert value == pytest.approx(5.0)

    def test_power_energy_monitors_push(self):
        power = PowerMonitor()
        energy = EnergyMonitor()
        power.push(92.0)
        energy.push(12.5)
        assert power.last() == 92.0
        assert energy.last() == 12.5


class TestMonitorEdgeCases:
    def test_window_size_one_stddev_zero(self):
        monitor = Monitor("m", window_size=1)
        monitor.push(3.0)
        monitor.push(7.0)  # evicts 3.0; a single sample has no spread
        assert len(monitor) == 1
        assert monitor.stddev() == 0.0
        assert monitor.average() == 7.0
        assert monitor.min() == monitor.max() == 7.0

    def test_eviction_statistics_follow_window(self):
        monitor = Monitor("m", window_size=2)
        for value in (100.0, 1.0, 2.0, 3.0):
            monitor.push(value)
        # only (2.0, 3.0) remain: the 100.0 outlier left the window
        assert monitor.average() == pytest.approx(2.5)
        assert monitor.stddev() == pytest.approx(0.5 ** 0.5)
        assert monitor.min() == 2.0 and monitor.max() == 3.0

    def test_summary_empty(self):
        assert Monitor("m").summary() == {"count": 0.0}

    def test_summary_full(self):
        monitor = Monitor("m", window_size=4)
        for value in (2.0, 4.0, 6.0):
            monitor.push(value)
        summary = monitor.summary()
        assert summary["count"] == 3.0
        assert summary["last"] == 6.0
        assert summary["average"] == 4.0
        assert summary["stddev"] == pytest.approx(2.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0

    def test_stop_twice_raises(self):
        monitor = TimeMonitor()
        monitor.start(0.0)
        monitor.stop(1.0)
        with pytest.raises(MonitorError):
            monitor.stop(2.0)

    def test_time_backwards_raises_and_resets(self):
        monitor = TimeMonitor()
        monitor.start(5.0)
        with pytest.raises(MonitorError):
            monitor.stop(4.0)
        # the failed region must not leave the monitor 'started'
        monitor.start(6.0)
        assert monitor.stop(7.0) == pytest.approx(1.0)

    def test_throughput_zero_length_region_raises(self):
        monitor = ThroughputMonitor()
        monitor.start(1.0)
        with pytest.raises(MonitorError):
            monitor.stop(1.0)

    def test_throughput_double_start_raises(self):
        monitor = ThroughputMonitor()
        monitor.start(0.0)
        with pytest.raises(MonitorError):
            monitor.start(0.5)


class TestGoals:
    @pytest.mark.parametrize(
        "comparison,value,observed,expected",
        [
            (ComparisonFunction.LESS, 10.0, 9.0, True),
            (ComparisonFunction.LESS, 10.0, 10.0, False),
            (ComparisonFunction.LESS_OR_EQUAL, 10.0, 10.0, True),
            (ComparisonFunction.GREATER, 5.0, 6.0, True),
            (ComparisonFunction.GREATER_OR_EQUAL, 5.0, 5.0, True),
            (ComparisonFunction.GREATER_OR_EQUAL, 5.0, 4.0, False),
        ],
    )
    def test_check(self, comparison, value, observed, expected):
        assert Goal("m", comparison, value).check(observed) is expected

    def test_violation_zero_when_met(self):
        goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0)
        assert goal.violation(90.0) == 0.0

    def test_violation_normalized(self):
        goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0)
        assert goal.violation(150.0) == pytest.approx(0.5)

    def test_mutable_target(self):
        goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0)
        goal.value = 80.0
        assert not goal.check(90.0)

    def test_str(self):
        text = str(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 102.0))
        assert "power" in text and "<=" in text


class TestKnowledgeBase:
    def test_add_and_iterate(self, kb):
        assert len(kb) == 4
        assert {point.knob("threads") for point in kb} == {1, 4, 8, 16}

    def test_schema_enforced_knobs(self, kb):
        with pytest.raises(ValueError):
            kb.add(
                OperatingPoint(
                    knobs={"other": 1},
                    metrics={
                        "time": MetricStats(1),
                        "power": MetricStats(1),
                        "throughput": MetricStats(1),
                    },
                )
            )

    def test_schema_enforced_metrics(self, kb):
        with pytest.raises(ValueError):
            kb.add(OperatingPoint(knobs={"threads": 2}, metrics={"time": MetricStats(1)}))

    def test_duplicate_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add(op(1, time=9.9, power=50.0))

    def test_find(self, kb):
        found = kb.find(threads=8)
        assert found.metric("time").mean == 1.4

    def test_find_missing_raises(self, kb):
        with pytest.raises(KeyError):
            kb.find(threads=3)

    def test_metric_bounds(self, kb):
        low, high = kb.metric_bounds("power")
        assert (low, high) == (45.0, 130.0)

    def test_make_operating_point_helper(self):
        point = make_operating_point({"threads": 2}, {"time": (1.0, 0.1)})
        assert point.metric("time").std == 0.1

    def test_metric_stats_confidence_bounds(self):
        stats = MetricStats(mean=10.0, std=2.0)
        assert stats.upper(2.0) == 14.0
        assert stats.lower(1.0) == 8.0

    def test_empty_kb_is_falsy(self):
        assert not KnowledgeBase()


class TestRank:
    def test_linear_rank(self):
        rank = Rank(
            RankDirection.MINIMIZE,
            RankComposition.LINEAR,
            (RankField("time", 1.0), RankField("power", 0.01)),
        )
        assert rank.evaluate({"time": 2.0, "power": 100.0}) == pytest.approx(3.0)

    def test_geometric_rank_thr_per_watt_squared(self):
        rank = maximize_throughput_per_watt_squared()
        value = rank.evaluate({"throughput": 8.0, "power": 2.0})
        assert value == pytest.approx(2.0)

    def test_geometric_rank_clamps_nonpositive(self):
        rank = maximize_throughput_per_watt_squared()
        assert rank.evaluate({"throughput": 0.0, "power": 10.0}) >= 0.0

    def test_better_direction(self):
        assert maximize_throughput().better(2.0, 1.0)
        assert minimize_time().better(1.0, 2.0)


class TestConstraint:
    def test_confidence_makes_le_pessimistic(self):
        point = op(4, time=2.0, power=100.0, power_std=5.0)
        constraint = Constraint(
            Goal("power", ComparisonFunction.LESS_OR_EQUAL, 105.0), confidence=2.0
        )
        # expected value is mean + 2 sigma = 110 > 105
        assert not constraint.satisfied_by(point)

    def test_confidence_makes_ge_pessimistic(self):
        point = op(4, time=2.0, power=100.0)
        constraint = Constraint(
            Goal("throughput", ComparisonFunction.GREATER_OR_EQUAL, 0.5),
            confidence=1.0,
        )
        assert constraint.satisfied_by(point)

    def test_constraint_on_knob(self):
        point = op(4, time=2.0, power=100.0)
        constraint = Constraint(Goal("threads", ComparisonFunction.LESS_OR_EQUAL, 8))
        assert constraint.satisfied_by(point)

    def test_state_sorts_constraints_by_priority(self):
        state = OptimizationState("s", rank=minimize_time())
        state.add_constraint(Constraint(Goal("power", ComparisonFunction.LESS, 1), priority=20))
        state.add_constraint(Constraint(Goal("time", ComparisonFunction.LESS, 1), priority=5))
        assert state.constraints[0].goal.field == "time"

    def test_remove_constraint(self):
        state = OptimizationState("s", rank=minimize_time())
        state.add_constraint(Constraint(Goal("power", ComparisonFunction.LESS, 1)))
        state.remove_constraint("power")
        assert state.constraint_on("power") is None


class TestAsrtm:
    def test_empty_knowledge_rejected(self):
        with pytest.raises(AsrtmError):
            ApplicationRuntimeManager(KnowledgeBase())

    def test_unconstrained_performance_picks_fastest(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        best = asrtm.update()
        assert best.knob("threads") == 16

    def test_power_budget_respected(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        state = OptimizationState("capped", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0))
        )
        asrtm.add_state(state)
        best = asrtm.update()
        assert best.knob("threads") == 8  # fastest under 100 W

    def test_budget_sweep_monotone(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        state = OptimizationState("capped", rank=minimize_time())
        goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 50.0)
        state.add_constraint(Constraint(goal))
        asrtm.add_state(state)
        times = []
        for budget in (50.0, 75.0, 100.0, 140.0):
            goal.value = budget
            times.append(asrtm.update().metric("time").mean)
        assert times == sorted(times, reverse=True)

    def test_infeasible_constraint_relaxes_to_nearest(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        state = OptimizationState("impossible", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 10.0))
        )
        asrtm.add_state(state)
        best = asrtm.update()  # nothing satisfies 10 W: closest is 45 W
        assert best.knob("threads") == 1

    def test_priority_ordering_on_relaxation(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        state = OptimizationState("mixed", rank=minimize_time())
        # high-priority throughput >= 0.5 (only 8 and 16 qualify),
        # low-priority power <= 40 (nobody qualifies) must not undo it
        state.add_constraint(
            Constraint(
                Goal("throughput", ComparisonFunction.GREATER_OR_EQUAL, 0.5),
                priority=1,
            )
        )
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 40.0), priority=9)
        )
        asrtm.add_state(state)
        best = asrtm.update()
        assert best.knob("threads") == 8  # least power violation among qualifiers

    def test_switch_state(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        efficiency = OptimizationState(
            "eff", rank=maximize_throughput_per_watt_squared()
        )
        asrtm.add_state(efficiency)
        perf_choice = asrtm.update().knob("threads")
        asrtm.switch_state("eff")
        eff_choice = asrtm.update().knob("threads")
        assert perf_choice == 16
        assert eff_choice < 16

    def test_switch_unknown_state_raises(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        with pytest.raises(AsrtmError):
            asrtm.switch_state("nope")

    def test_duplicate_state_rejected(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        with pytest.raises(AsrtmError):
            asrtm.add_state(OptimizationState("perf", rank=minimize_time()))

    def test_feedback_scales_expectations(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        state = OptimizationState("capped", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0))
        )
        asrtm.add_state(state)
        first = asrtm.update()
        assert first.knob("threads") == 8
        # the machine draws 20% more power than profiled: after feedback
        # the 95 W point is really ~114 W and must be dropped
        monitor = PowerMonitor()
        asrtm.attach_monitor("power", monitor)
        for _ in range(5):
            monitor.push(first.metric("power").mean * 1.2)
            asrtm.ingest_feedback()
        assert asrtm.adjustment("power") > 1.15
        best = asrtm.update()
        assert best.knob("threads") == 4

    def test_reset_feedback(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        asrtm.update()
        monitor = PowerMonitor()
        asrtm.attach_monitor("power", monitor)
        monitor.push(999.0)
        asrtm.ingest_feedback()
        asrtm.reset_feedback()
        assert asrtm.adjustment("power") == 1.0


class TestManager:
    def test_weaved_call_sequence(self, kb):
        manager = MargotManager("2mm", kb)
        manager.asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        point = manager.update()
        manager.start_monitor(now=0.0)
        manager.stop_monitor(now=point.metric("time").mean, power_w=100.0)
        record = manager.log(now=point.metric("time").mean)
        assert record.knobs["threads"] == 16
        assert record.observations["power"] == 100.0
        assert record.state == "perf"

    def test_double_start_raises(self, kb):
        manager = MargotManager("k", kb)
        manager.asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        manager.start_monitor(0.0)
        with pytest.raises(RuntimeError):
            manager.start_monitor(0.1)

    def test_stop_before_start_raises(self, kb):
        manager = MargotManager("k", kb)
        with pytest.raises(RuntimeError):
            manager.stop_monitor(1.0)

    def test_records_accumulate(self, kb):
        manager = MargotManager("k", kb)
        manager.asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        for step in range(3):
            manager.update()
            manager.start_monitor(float(step))
            manager.stop_monitor(float(step) + 0.5, power_w=90.0)
            manager.log(float(step) + 0.5)
        assert len(manager.records) == 3

    def test_monitors_exposed(self, kb):
        manager = MargotManager("k", kb)
        assert set(manager.monitors) == {"time", "throughput", "power"}
