"""Tests for the Polybench suite: sources, references and profiles."""

import numpy as np
import pytest

from repro.cir import logical_lines, parse, to_source
from repro.polybench.suite import BENCHMARK_NAMES, all_apps, load
from repro.polybench.workload import (
    WorkloadAnalysisError,
    bound_environment,
    profile_kernel,
)

SCALE = 0.02  # tiny datasets for functional checks


@pytest.fixture(scope="module")
def profiles():
    return {app.name: profile_kernel(app) for app in all_apps()}


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12
        assert len(all_apps()) == 12

    def test_table1_order(self):
        assert BENCHMARK_NAMES[0] == "2mm"
        assert BENCHMARK_NAMES[-1] == "syrk"

    def test_load_by_name(self):
        assert load("atax").name == "atax"

    def test_load_unknown_raises_with_names(self):
        with pytest.raises(KeyError) as exc:
            load("gemm")
        assert "2mm" in str(exc.value)


class TestSources:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_parses(self, name):
        unit = load(name).parse()
        assert unit.functions()

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_round_trips(self, name):
        unit = load(name).parse()
        printed = to_source(unit)
        assert to_source(parse(printed)) == printed

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_kernel_function_exists(self, name):
        app = load(name)
        unit = app.parse()
        for kernel in app.kernels:
            assert unit.has_function(kernel)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_has_main_and_omp(self, name):
        app = load(name)
        unit = app.parse()
        assert unit.has_function("main")
        assert "#pragma omp parallel for" in to_source(unit)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_realistic_logical_size(self, name):
        loc = logical_lines(load(name).parse())
        assert 30 <= loc <= 200  # paper's O-LOC range is 47..145

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_sizes_match_macros(self, name):
        app = load(name)
        env = bound_environment(app.parse())
        for macro, value in app.sizes.items():
            assert env[macro] == value


class TestReferences:
    """Functional validation of the numpy reference implementations."""

    def _inputs(self, name, seed=7):
        app = load(name)
        return app, app.make_inputs(np.random.default_rng(seed), SCALE)

    def test_2mm_matches_manual(self):
        app, inputs = self._inputs("2mm")
        out = app.reference(inputs)
        expected = inputs["beta"] * inputs["D"] + (
            inputs["alpha"] * inputs["A"] @ inputs["B"]
        ) @ inputs["C"]
        np.testing.assert_allclose(out["D"], expected)

    def test_3mm_is_composition(self):
        app, inputs = self._inputs("3mm")
        out = app.reference(inputs)
        np.testing.assert_allclose(out["G"], out["E"] @ out["F"])

    def test_atax_identity(self):
        app, inputs = self._inputs("atax")
        out = app.reference(inputs)
        np.testing.assert_allclose(out["y"], inputs["A"].T @ (inputs["A"] @ inputs["x"]))

    def test_correlation_diagonal_is_one(self):
        app, inputs = self._inputs("correlation")
        corr = app.reference(inputs)["corr"]
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_correlation_symmetric_and_bounded(self):
        app, inputs = self._inputs("correlation")
        corr = app.reference(inputs)["corr"]
        np.testing.assert_allclose(corr, corr.T, atol=1e-12)
        assert np.all(np.abs(corr) <= 1.0 + 1e-9)

    def test_doitgen_slicewise_matmul(self):
        app, inputs = self._inputs("doitgen")
        out = app.reference(inputs)["A"]
        np.testing.assert_allclose(out[0], inputs["A"][0] @ inputs["C4"])

    def test_gemver_manual(self):
        app, inputs = self._inputs("gemver")
        out = app.reference(inputs)
        a_hat = (
            inputs["A"]
            + np.outer(inputs["u1"], inputs["v1"])
            + np.outer(inputs["u2"], inputs["v2"])
        )
        x = inputs["beta"] * (a_hat.T @ inputs["y"]) + inputs["z"]
        np.testing.assert_allclose(out["x"], x)
        np.testing.assert_allclose(out["w"], inputs["alpha"] * (a_hat @ x))

    def test_jacobi_2d_preserves_boundary(self):
        app, inputs = self._inputs("jacobi-2d")
        out = app.reference(inputs)
        np.testing.assert_allclose(out["A"][0, :], inputs["A"][0, :])
        np.testing.assert_allclose(out["A"][:, -1], inputs["A"][:, -1])

    def test_jacobi_2d_smooths_a_spike(self):
        app = load("jacobi-2d")
        a = np.zeros((9, 9))
        a[4, 4] = 100.0
        out = app.reference({"A": a, "B": np.zeros((9, 9)), "tsteps": np.int64(2)})
        assert out["A"].max() < 100.0
        assert out["A"][3, 4] > 0.0  # the spike diffused to neighbours

    def test_mvt_identity(self):
        app, inputs = self._inputs("mvt")
        out = app.reference(inputs)
        np.testing.assert_allclose(out["x1"], inputs["x1"] + inputs["A"] @ inputs["y1"])
        np.testing.assert_allclose(out["x2"], inputs["x2"] + inputs["A"].T @ inputs["y2"])

    def test_nussinov_monotone_triangular(self):
        app, inputs = self._inputs("nussinov")
        table = app.reference(inputs)["table"]
        n = table.shape[0]
        # scores grow with subsequence length and the lower triangle stays 0
        assert table[0, n - 1] == table.max()
        assert np.all(table[np.tril_indices(n, -1)] == 0)

    def test_nussinov_pairs_counted(self):
        app = load("nussinov")
        # bases 0 and 3 pair (0+3==3) but only across a gap (i < j-1),
        # so [0, x, 3] scores one pair while [0, 3] scores none
        table_gap = app.reference({"seq": np.array([0, 1, 3])})["table"]
        assert table_gap[0, 2] == 1
        table_adjacent = app.reference({"seq": np.array([0, 3])})["table"]
        assert table_adjacent[0, 1] == 0

    def test_seidel_2d_averages_neighbourhood(self):
        app = load("seidel-2d")
        a = np.zeros((5, 5))
        a[2, 2] = 9.0
        out = app.reference({"A": a, "tsteps": np.int64(1)})["A"]
        # the first interior update (1,1) sees the original zeros plus
        # nothing; (2,2) averages its own value into the neighbourhood
        assert out[2, 2] < 9.0
        assert out[2, 2] > 0.0

    def test_syr2k_lower_triangle_updated(self):
        app, inputs = self._inputs("syr2k")
        out = app.reference(inputs)["C"]
        n = out.shape[0]
        upper = np.triu_indices(n, 1)
        np.testing.assert_allclose(out[upper], inputs["C"][upper])

    def test_syr2k_matches_blas_definition(self):
        app, inputs = self._inputs("syr2k")
        out = app.reference(inputs)["C"]
        full = inputs["alpha"] * (
            inputs["A"] @ inputs["B"].T + inputs["B"] @ inputs["A"].T
        ) + inputs["beta"] * inputs["C"]
        lower = np.tril_indices(out.shape[0])
        np.testing.assert_allclose(out[lower], full[lower])

    def test_syrk_matches_blas_definition(self):
        app, inputs = self._inputs("syrk")
        out = app.reference(inputs)["C"]
        full = inputs["alpha"] * (inputs["A"] @ inputs["A"].T) + inputs["beta"] * inputs["C"]
        lower = np.tril_indices(out.shape[0])
        np.testing.assert_allclose(out[lower], full[lower])

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_reference_is_deterministic(self, name):
        app = load(name)
        inputs = app.make_inputs(np.random.default_rng(3), SCALE)
        out1 = app.reference(inputs)
        out2 = app.reference(inputs)
        for key in out1:
            np.testing.assert_array_equal(out1[key], out2[key])

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_make_inputs_seeded(self, name):
        app = load(name)
        a = app.make_inputs(np.random.default_rng(5), SCALE)
        b = app.make_inputs(np.random.default_rng(5), SCALE)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestWorkloadProfiles:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_profiles_compute(self, name, profiles):
        profile = profiles[name]
        assert profile.flops > 0
        assert profile.working_set_bytes > 0
        assert 0.0 <= profile.parallel_fraction <= 1.0

    def test_2mm_flops_scale(self, profiles):
        # 2mm does ~2*(NI*NJ*NK + NI*NL*NJ) multiply-adds plus scaling:
        # the AST-derived count must land in that ballpark
        p = profiles["2mm"]
        analytic = 3 * (800 * 900 * 1100) + 2 * (800 * 1200 * 900)
        assert 0.5 * analytic <= p.flops <= 2.0 * analytic

    def test_dependence_detected_for_stencil_dp(self, profiles):
        assert profiles["seidel-2d"].loop_carried_dependence
        assert profiles["nussinov"].loop_carried_dependence

    def test_no_false_dependence(self, profiles):
        for name in ("2mm", "3mm", "atax", "doitgen", "gemver", "jacobi-2d", "mvt"):
            assert not profiles[name].loop_carried_dependence, name

    def test_reductions_detected(self, profiles):
        for name in ("2mm", "3mm", "atax", "correlation", "gemver", "mvt"):
            assert profiles[name].reduction_innermost, name

    def test_non_reduction_kernels(self, profiles):
        for name in ("jacobi-2d", "seidel-2d", "syrk", "syr2k"):
            assert not profiles[name].reduction_innermost, name

    def test_jacobi_region_count_scales_with_tsteps(self, profiles):
        assert profiles["jacobi-2d"].parallel_regions == 2 * 500

    def test_triangular_estimates_halved(self, profiles):
        # syrk's j loop runs to i, so total flops are about half of a
        # full square sweep (2 fp ops per innermost iteration)
        syrk = profiles["syrk"]
        full_square = 2 * 1200 * 1000 * 1200  # if j ran to n every time
        assert 0.3 * full_square < syrk.flops < 0.75 * full_square

    def test_working_set_counts_referenced_arrays_only(self, profiles):
        # atax arrays: A (M*N) + x + y (N) + tmp (M) doubles
        expected = 8 * (1900 * 2100 + 2100 + 2100 + 1900)
        assert abs(profiles["atax"].working_set_bytes - expected) < 1e-6

    def test_nussinov_call_heavy(self, profiles):
        assert profiles["nussinov"].call_density > 0.01

    def test_unknown_bound_raises(self):
        from repro.polybench.apps.base import BenchmarkApp

        source = """
void kernel_x(int n) {
  int i;
#pragma omp parallel for
  for (i = 0; i < unknown; i++)
    x = i;
}
"""
        app = BenchmarkApp(
            name="x",
            source=source,
            kernels=("kernel_x",),
            sizes={},
            make_inputs=lambda rng, scale: {},
            reference=lambda inputs: {},
        )
        with pytest.raises(WorkloadAnalysisError):
            profile_kernel(app)

    def test_scaled_sizes_minimum(self):
        app = load("2mm")
        sizes = app.scaled_sizes(0.0001)
        assert all(value >= 4 for value in sizes.values())
