"""Tests for the Milepost-style feature extractor."""

import numpy as np
import pytest

from repro.cir import parse
from repro.milepost.features import FEATURE_NAMES, extract_features
from repro.polybench.suite import BENCHMARK_NAMES, load

SIMPLE = """
#define N 64
#define DATA_TYPE double
static DATA_TYPE A[N][N];
void kernel_simple(int n, DATA_TYPE alpha)
{
  int i, j;
#pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] += alpha * A[i][j] / 2.0;
}
"""


@pytest.fixture(scope="module")
def simple_features():
    return extract_features(parse(SIMPLE), "kernel_simple")


class TestFeatureVector:
    def test_schema_complete(self, simple_features):
        assert set(simple_features.values) == set(FEATURE_NAMES)

    def test_as_array_order(self, simple_features):
        array = simple_features.as_array()
        assert len(array) == len(FEATURE_NAMES)
        assert array[FEATURE_NAMES.index("ft16_loops")] == simple_features["ft16_loops"]

    def test_loop_features(self, simple_features):
        assert simple_features["ft16_loops"] == 2
        assert simple_features["ft17_loop_nest_depth"] == 2
        assert simple_features["ft18_innermost_loops"] == 1

    def test_omp_pragma_counted(self, simple_features):
        assert simple_features["ft20_omp_pragmas"] == 1

    def test_memory_features(self, simple_features):
        assert simple_features["ft11_array_stores"] == 1
        assert simple_features["ft10_array_loads"] == 1
        assert simple_features["ft24_max_array_rank"] == 2

    def test_param_features(self, simple_features):
        assert simple_features["ft21_params"] == 2
        assert simple_features["ft22_array_params"] == 0

    def test_division_features(self, simple_features):
        assert simple_features["ft7_divisions"] == 1
        assert simple_features["ft36_div_ratio"] > 0

    def test_accumulation_detected(self, simple_features):
        assert simple_features["ft37_accum_statements"] == 1
        assert simple_features["ft39_reduction_loops"] == 0  # lhs varies with j

    def test_stride_one_detected(self, simple_features):
        assert simple_features["ft40_stride_one_refs"] == 2  # A[i][j] twice

    def test_ratios_bounded(self, simple_features):
        for name in ("ft29_mem_ratio", "ft30_fp_ratio", "ft32_branch_ratio",
                     "ft33_call_ratio", "ft35_mul_ratio", "ft36_div_ratio"):
            assert 0.0 <= simple_features[name] <= 1.0


class TestOnPolybench:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_extraction_succeeds(self, name):
        app = load(name)
        vector = extract_features(app.parse(), app.kernels[0])
        assert np.isfinite(vector.as_array()).all()

    def test_kernels_are_distinguishable(self):
        vectors = []
        for name in BENCHMARK_NAMES:
            app = load(name)
            vectors.append(tuple(extract_features(app.parse(), app.kernels[0]).as_array()))
        assert len(set(vectors)) == len(vectors)

    def test_nussinov_branchiest(self):
        branchy = {}
        for name in ("2mm", "nussinov", "jacobi-2d"):
            app = load(name)
            vector = extract_features(app.parse(), app.kernels[0])
            branchy[name] = vector["ft15_branches"]
        assert branchy["nussinov"] > branchy["2mm"]
        assert branchy["nussinov"] > branchy["jacobi-2d"]

    def test_reduction_feature_matches_workload(self):
        from repro.polybench.workload import profile_kernel

        for name in BENCHMARK_NAMES:
            app = load(name)
            vector = extract_features(app.parse(), app.kernels[0])
            profile = profile_kernel(app)
            has_reduction_loop = vector["ft39_reduction_loops"] > 0
            if profile.reduction_innermost:
                assert has_reduction_loop, name

    def test_depth_matches_analysis(self):
        app = load("doitgen")
        vector = extract_features(app.parse(), app.kernels[0])
        assert vector["ft17_loop_nest_depth"] == 4
