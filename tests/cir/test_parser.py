"""Unit tests for the C-subset parser."""

import pytest

from repro.cir import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    CompoundLiteral,
    Continue,
    Decl,
    DeclGroup,
    DoWhile,
    ExprStmt,
    FloatLit,
    For,
    FunctionDecl,
    FunctionDef,
    Ident,
    If,
    Include,
    IntLit,
    MacroDef,
    Member,
    ParseError,
    Pragma,
    Return,
    SizeOf,
    TernaryOp,
    Typedef,
    UnaryOp,
    While,
    parse,
)


def parse_expr(text):
    """Parse `text` as an expression via a wrapper function."""
    unit = parse(f"void f(void) {{ x = {text}; }}")
    stmt = unit.function("f").body.stmts[0]
    return stmt.expr.rhs


def parse_stmt(text):
    unit = parse(f"void f(void) {{ {text} }}")
    return unit.function("f").body.stmts[0]


class TestTopLevel:
    def test_include_system(self):
        unit = parse("#include <stdio.h>\n")
        (decl,) = unit.decls
        assert isinstance(decl, Include)
        assert decl.system
        assert decl.target == "stdio.h"

    def test_include_local(self):
        unit = parse('#include "margot.h"\n')
        (decl,) = unit.decls
        assert not decl.system

    def test_macro_definition(self):
        unit = parse("#define N 1024\n")
        (decl,) = unit.decls
        assert isinstance(decl, MacroDef)
        assert decl.name == "N"
        assert decl.body == "1024"

    def test_type_macro_registers_typedef(self):
        unit = parse("#define DATA_TYPE double\nDATA_TYPE x;")
        decl = unit.decls[1]
        assert isinstance(decl, Decl)
        assert decl.type.name == "DATA_TYPE"

    def test_typedef(self):
        unit = parse("typedef unsigned long word_t;\nword_t w;")
        assert isinstance(unit.decls[0], Typedef)
        assert unit.decls[1].type.name == "word_t"

    def test_global_array(self):
        unit = parse("#define N 8\nstatic double A[N][N];")
        decl = unit.decls[1]
        assert isinstance(decl, Decl)
        assert decl.is_array
        assert len(decl.array_dims) == 2
        assert "static" in decl.type.qualifiers

    def test_function_prototype(self):
        unit = parse("int add(int a, int b);")
        (decl,) = unit.decls
        assert isinstance(decl, FunctionDecl)
        assert decl.name == "add"
        assert len(decl.params) == 2

    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.function("add")
        assert isinstance(func, FunctionDef)
        assert isinstance(func.body.stmts[0], Return)

    def test_void_param_list(self):
        unit = parse("void f(void) { }")
        assert unit.function("f").params == []

    def test_array_params(self):
        unit = parse("#define N 4\nvoid f(double A[N][N], int n) { }")
        func = unit.function("f")
        assert len(func.params[0].array_dims) == 2

    def test_pointer_params(self):
        unit = parse("void f(double *alpha, char **argv) { }")
        func = unit.function("f")
        assert func.params[0].type.pointers == 1
        assert func.params[1].type.pointers == 2

    def test_pragma_attaches_to_function(self):
        unit = parse("#pragma scop\nvoid f(void) { }")
        func = unit.function("f")
        assert len(func.pragmas) == 1
        assert func.pragmas[0].text == "scop"

    def test_functions_listed_in_order(self):
        unit = parse("void a(void) {}\nvoid b(void) {}")
        assert [f.name for f in unit.functions()] == ["a", "b"]

    def test_function_lookup_missing_raises(self):
        unit = parse("void a(void) {}")
        with pytest.raises(KeyError):
            unit.function("missing")

    def test_has_function(self):
        unit = parse("void a(void) {}")
        assert unit.has_function("a")
        assert not unit.has_function("b")


class TestStatements:
    def test_expression_statement(self):
        stmt = parse_stmt("x = 1;")
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, Assign)

    def test_declaration_with_init(self):
        stmt = parse_stmt("int i = 0;")
        assert isinstance(stmt, Decl)
        assert isinstance(stmt.init, IntLit)

    def test_comma_declaration_group(self):
        stmt = parse_stmt("int i, j, k;")
        assert isinstance(stmt, DeclGroup)
        assert [d.name for d in stmt.decls] == ["i", "j", "k"]

    def test_local_array_declaration(self):
        stmt = parse_stmt("double acc[16];")
        assert isinstance(stmt, Decl)
        assert stmt.is_array

    def test_brace_initializer(self):
        stmt = parse_stmt("int a[3] = {1, 2, 3};")
        assert isinstance(stmt.init, CompoundLiteral)
        assert len(stmt.init.items) == 3

    def test_if_else(self):
        stmt = parse_stmt("if (x > 0) y = 1; else y = 2;")
        assert isinstance(stmt, If)
        assert stmt.other is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.other is None
        assert stmt.then.other is not None

    def test_for_loop_parts(self):
        stmt = parse_stmt("for (i = 0; i < n; i++) x = 1;")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, ExprStmt)
        assert isinstance(stmt.cond, BinOp)
        assert isinstance(stmt.step, UnaryOp)

    def test_for_with_declaration_init(self):
        stmt = parse_stmt("for (int i = 0; i < 4; i++) x = i;")
        assert isinstance(stmt.init, Decl)

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None
        assert stmt.cond is None
        assert stmt.step is None
        assert isinstance(stmt.body, Break)

    def test_while(self):
        stmt = parse_stmt("while (x < 3) x++;")
        assert isinstance(stmt, While)

    def test_do_while(self):
        stmt = parse_stmt("do x++; while (x < 3);")
        assert isinstance(stmt, DoWhile)

    def test_break_continue(self):
        unit = parse("void f(void) { for (;;) { break; continue; } }")
        body = unit.function("f").body.stmts[0].body
        assert isinstance(body.stmts[0], Break)
        assert isinstance(body.stmts[1], Continue)

    def test_return_void(self):
        stmt = parse_stmt("return;")
        assert isinstance(stmt, Return)
        assert stmt.value is None

    def test_pragma_statement(self):
        unit = parse("void f(void) {\n#pragma omp parallel for\nfor (;;) break;\n}")
        func = unit.function("f")
        pragma_block = func.body.stmts[0]
        # the pragma is wrapped with its controlled statement? here it is
        # a direct block member, so it stays a statement
        found = [s for s in func.body.stmts if isinstance(s, Pragma)]
        assert found and found[0].is_omp

    def test_omp_pragma_wraps_braceless_loop_body(self):
        source = (
            "void f(int n) {\n"
            "  int t, i;\n"
            "  for (t = 0; t < n; t++)\n"
            "#pragma omp parallel for\n"
            "    for (i = 0; i < n; i++)\n"
            "      t = i;\n"
            "}\n"
        )
        unit = parse(source)
        outer = unit.function("f").body.stmts[1]
        assert isinstance(outer, For)
        # the pragma + inner loop were wrapped into the outer body
        assert isinstance(outer.body, Block)
        assert isinstance(outer.body.stmts[0], Pragma)
        assert isinstance(outer.body.stmts[1], For)

    def test_nested_blocks(self):
        stmt = parse_stmt("{ { x = 1; } }")
        assert isinstance(stmt, Block)
        assert isinstance(stmt.stmts[0], Block)

    def test_empty_statement(self):
        from repro.cir import EmptyStmt

        stmt = parse_stmt(";")
        assert isinstance(stmt, EmptyStmt)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"

    def test_assignment_right_associative(self):
        unit = parse("void f(void) { a = b = c; }")
        assign = unit.function("f").body.stmts[0].expr
        assert isinstance(assign.rhs, Assign)

    def test_compound_assignment(self):
        unit = parse("void f(void) { x += 2; }")
        assign = unit.function("f").body.stmts[0].expr
        assert assign.op == "+="

    def test_ternary(self):
        expr = parse_expr("a > b ? a : b")
        assert isinstance(expr, TernaryOp)

    def test_logical_operators(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"

    def test_relational_chain(self):
        expr = parse_expr("a < b == c")
        assert expr.op == "=="

    def test_unary_minus(self):
        expr = parse_expr("-a + b")
        assert expr.op == "+"
        assert isinstance(expr.lhs, UnaryOp)

    def test_prefix_and_postfix_increment(self):
        pre = parse_expr("++i")
        post = parse_expr("i++")
        assert isinstance(pre, UnaryOp) and not pre.postfix
        assert isinstance(post, UnaryOp) and post.postfix

    def test_address_of_and_deref(self):
        expr = parse_expr("*p + &q")
        assert isinstance(expr.lhs, UnaryOp) and expr.lhs.op == "*"
        assert isinstance(expr.rhs, UnaryOp) and expr.rhs.op == "&"

    def test_multi_dim_array_ref(self):
        expr = parse_expr("A[i][j][k]")
        assert isinstance(expr, ArrayRef)
        assert len(expr.indices) == 3

    def test_call_with_args(self):
        expr = parse_expr("f(a, b + 1, g(c))")
        assert isinstance(expr, Call)
        assert expr.name == "f"
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], Call)

    def test_call_no_args(self):
        expr = parse_expr("f()")
        assert expr.args == []

    def test_cast(self):
        expr = parse_expr("(double)x / n")
        assert expr.op == "/"
        assert isinstance(expr.lhs, Cast)

    def test_cast_of_parenthesized_expr_is_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, BinOp)
        assert isinstance(expr.lhs, Ident)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(double)")
        assert isinstance(expr, SizeOf)
        assert expr.type is not None

    def test_sizeof_expression(self):
        expr = parse_expr("sizeof x")
        assert isinstance(expr, SizeOf)
        assert expr.operand is not None

    def test_member_access(self):
        expr = parse_expr("s.field")
        assert isinstance(expr, Member)
        assert not expr.arrow

    def test_arrow_access(self):
        expr = parse_expr("p->field")
        assert expr.arrow

    def test_comma_in_for_step(self):
        stmt = parse_stmt("for (i = 0, j = 1; i < n; i++, j++) x = 1;")
        assert isinstance(stmt, For)
        assert stmt.step.op == ","

    def test_int_literal_value(self):
        assert parse_expr("0x10").value == 16
        assert parse_expr("42").value == 42

    def test_float_literal_value(self):
        assert parse_expr("1.5").value == 1.5


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f(void) { x = 1 }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(void) { x = 1;")

    def test_unknown_type_in_declaration(self):
        with pytest.raises(ParseError):
            parse("void f(void) { sometype x; }")

    def test_struct_unsupported(self):
        with pytest.raises(ParseError):
            parse("struct point { int x; };")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse("void f(void) {\n  x = ;\n}")
        assert exc.value.token.line == 2
