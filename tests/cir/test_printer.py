"""Unit tests for the pretty-printer and logical LOC counting."""

import pytest

from repro.cir import logical_lines, parse, to_source
from repro.cir.printer import expr_to_source


def roundtrip(source):
    unit = parse(source)
    printed = to_source(unit)
    reparsed = parse(printed)
    return printed, to_source(reparsed)


def expr_rt(text):
    unit = parse(f"void f(void) {{ x = {text}; }}")
    return expr_to_source(unit.function("f").body.stmts[0].expr.rhs)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "#include <stdio.h>\n",
            "#define N 42\n",
            "typedef unsigned long word_t;\n",
            "static double A[4][4];\n",
            "int add(int a, int b) { return a + b; }",
            "void f(void) { for (i = 0; i < n; i++) x += A[i][0]; }",
            "void f(void) { if (a > b) m = a; else m = b; }",
            "void f(void) { while (x < 3) x++; }",
            "void f(void) { do x++; while (x < 3); }",
            "void f(double *alpha) { *alpha = 1.5; }",
            'void f(void) { printf("%d\\n", x); }',
        ],
    )
    def test_stable_after_one_round(self, source):
        first, second = roundtrip(source)
        assert first == second

    def test_all_statement_kinds(self):
        source = """
void f(int n) {
  int i, j;
  double acc[4] = {0.0, 1.0, 2.0, 3.0};
  for (i = 0; i < n; i++) {
    if (i % 2 == 0)
      continue;
    if (i > 10)
      break;
    acc[0] += i > 3 ? 1.0 : 0.5;
  }
  return;
}
"""
        first, second = roundtrip(source)
        assert first == second

    def test_pragmas_preserved(self):
        source = (
            "void f(int n) {\n"
            "  int i;\n"
            "#pragma omp parallel for\n"
            "  for (i = 0; i < n; i++)\n"
            "    x = i;\n"
            "}\n"
        )
        printed = to_source(parse(source))
        assert "#pragma omp parallel for" in printed

    def test_function_pragma_printed_before_signature(self):
        source = "#pragma GCC optimize (\"O2\")\nvoid f(void) { }\n"
        printed = to_source(parse(source))
        lines = [l for l in printed.splitlines() if l.strip()]
        assert lines[0].startswith("#pragma GCC optimize")
        assert lines[1].startswith("void f")


class TestExpressionPrinting:
    def test_precedence_parentheses_inserted(self):
        assert expr_rt("(a + b) * c") == "(a + b) * c"

    def test_no_redundant_parentheses(self):
        assert expr_rt("a + b * c") == "a + b * c"

    def test_nested_unary(self):
        assert expr_rt("-(a + b)") == "-(a + b)"

    def test_cast_printed(self):
        assert expr_rt("(double)x / n") == "(double)x / n"

    def test_array_ref_chain(self):
        assert expr_rt("A[i][j]") == "A[i][j]"

    def test_call_args(self):
        assert expr_rt("f(a, b)") == "f(a, b)"

    def test_ternary(self):
        assert expr_rt("a > b ? a : b") == "a > b ? a : b"

    def test_assignment_in_expression(self):
        unit = parse("void f(void) { a = b = 1; }")
        text = expr_to_source(unit.function("f").body.stmts[0].expr)
        assert text == "a = b = 1"

    def test_left_assoc_subtraction_parens(self):
        # a - (b - c) must keep its parentheses
        assert expr_rt("a - (b - c)") == "a - (b - c)"

    def test_postfix_increment(self):
        assert expr_rt("i++") == "i++"


class TestLogicalLines:
    def test_empty_function_is_one_line(self):
        assert logical_lines(parse("void f(void) { }")) == 1

    def test_braces_do_not_count(self):
        flat = parse("void f(void) { x = 1; }")
        nested = parse("void f(void) { { { x = 1; } } }")
        assert logical_lines(flat) == logical_lines(nested) == 2

    def test_control_headers_count(self):
        unit = parse("void f(void) { for (;;) { x = 1; } }")
        assert logical_lines(unit) == 3  # signature + for + assignment

    def test_else_counts(self):
        with_else = parse("void f(void) { if (a) x = 1; else x = 2; }")
        without = parse("void f(void) { if (a) x = 1; }")
        assert logical_lines(with_else) == logical_lines(without) + 2

    def test_pragma_counts(self):
        source = (
            "void f(int n) {\n"
            "  int i;\n"
            "#pragma omp parallel for\n"
            "  for (i = 0; i < n; i++)\n"
            "    x = i;\n"
            "}\n"
        )
        assert logical_lines(parse(source)) == 5

    def test_directives_count(self):
        unit = parse("#include <stdio.h>\n#define N 4\n")
        assert logical_lines(unit) == 2

    def test_comma_declaration_is_one_line(self):
        unit = parse("void f(void) { int i, j, k; }")
        assert logical_lines(unit) == 2

    def test_empty_statement_free(self):
        unit = parse("void f(void) { ; }")
        assert logical_lines(unit) == 1

    def test_prototype_counts_one(self):
        assert logical_lines(parse("int f(int x);")) == 1
