"""Unit tests for the C-subset lexer."""

import pytest

from repro.cir.lexer import Lexer, LexError, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token,) = [t for t in tokenize("hello_1") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.IDENT
        assert token.text == "hello_1"

    def test_keyword_classified(self):
        assert kinds("for") == [TokenKind.KEYWORD]
        assert kinds("while") == [TokenKind.KEYWORD]
        assert kinds("double") == [TokenKind.KEYWORD]

    def test_identifier_with_keyword_prefix(self):
        tokens = texts("format intx")
        assert tokens == ["format", "intx"]
        assert kinds("format intx") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_underscore_identifier(self):
        assert kinds("__socrates_version") == [TokenKind.IDENT]


class TestNumbers:
    def test_decimal_int(self):
        (token,) = [t for t in tokenize("1234") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.INT

    def test_hex_int(self):
        (token,) = [t for t in tokenize("0x1F") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.INT
        assert token.text == "0x1F"

    def test_float_with_dot(self):
        assert kinds("1.5") == [TokenKind.FLOAT]

    def test_float_leading_dot(self):
        assert kinds(".5") == [TokenKind.FLOAT]

    def test_float_exponent(self):
        assert kinds("1e10") == [TokenKind.FLOAT]
        assert kinds("2.5e-3") == [TokenKind.FLOAT]

    def test_float_suffix(self):
        assert kinds("1.0f") == [TokenKind.FLOAT]

    def test_int_suffixes(self):
        assert kinds("10UL") == [TokenKind.INT]

    def test_float_f_suffix_on_int_literal(self):
        # 10f is a float by suffix
        assert kinds("10f") == [TokenKind.FLOAT]

    def test_member_access_not_float(self):
        # a.b must not lex the dot into a number
        assert texts("a.b") == ["a", ".", "b"]


class TestOperators:
    @pytest.mark.parametrize(
        "op",
        ["+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||",
         "<<", ">>", "++", "--", "+=", "-=", "*=", "/=", "->", "?", ":", ","],
    )
    def test_single_operator(self, op):
        tokens = [t for t in tokenize(op) if t.kind is not TokenKind.EOF]
        assert len(tokens) == 1
        assert tokens[0].text == op

    def test_maximal_munch(self):
        assert texts("a+++b") == ["a", "++", "+", "b"]

    def test_shift_assign(self):
        assert texts("x <<= 2") == ["x", "<<=", "2"]

    def test_is_op_helper(self):
        token = Token(TokenKind.OP, "+", 1, 1)
        assert token.is_op("+", "-")
        assert not token.is_op("*")


class TestCommentsAndWhitespace:
    def test_line_comment_stripped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_stripped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].col == 3


class TestStringsAndChars:
    def test_string_literal(self):
        (token,) = [t for t in tokenize('"hi there"') if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.STRING
        assert token.text == '"hi there"'

    def test_string_with_escape(self):
        (token,) = [t for t in tokenize(r'"a\"b"') if t.kind is not TokenKind.EOF]
        assert token.text == r'"a\"b"'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        (token,) = [t for t in tokenize("'x'") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.CHAR


class TestDirectives:
    def test_include_directive(self):
        (token,) = [t for t in tokenize("#include <stdio.h>\n") if t.kind is not TokenKind.EOF]
        assert token.kind is TokenKind.DIRECTIVE
        assert token.text == "#include <stdio.h>"

    def test_pragma_directive(self):
        (token,) = [
            t for t in tokenize("#pragma omp parallel for\n") if t.kind is not TokenKind.EOF
        ]
        assert token.text == "#pragma omp parallel for"

    def test_directive_with_continuation(self):
        source = "#define BIG \\\n  42\nx"
        tokens = [t for t in tokenize(source) if t.kind is not TokenKind.EOF]
        assert tokens[0].kind is TokenKind.DIRECTIVE
        assert "42" in tokens[0].text
        assert tokens[1].text == "x"

    def test_hash_mid_line_is_error(self):
        with pytest.raises(LexError):
            tokenize("a # b")

    def test_directive_only_at_line_start_with_indent(self):
        tokens = [t for t in tokenize("  #pragma omp for\n") if t.kind is not TokenKind.EOF]
        assert tokens[0].kind is TokenKind.DIRECTIVE


class TestErrorReporting:
    def test_unexpected_char_raises_with_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("a\n  $")
        assert exc.value.line == 2
        assert exc.value.col == 3
