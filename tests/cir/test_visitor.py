"""Unit tests for the generic AST traversal utilities."""

from repro.cir import (
    Assign,
    BinOp,
    ExprStmt,
    For,
    Ident,
    IntLit,
    NodeTransformer,
    NodeVisitor,
    parse,
    to_source,
    walk,
)
from repro.cir.visitor import iter_child_nodes

SOURCE = """
void f(int n) {
  int i;
  for (i = 0; i < n; i++)
    x = x + i;
}
"""


class TestWalk:
    def test_walk_yields_root_first(self):
        unit = parse(SOURCE)
        nodes = list(walk(unit))
        assert nodes[0] is unit

    def test_walk_reaches_leaves(self):
        unit = parse(SOURCE)
        idents = [n.name for n in walk(unit) if isinstance(n, Ident)]
        assert "x" in idents and "i" in idents

    def test_iter_child_nodes_flattens_lists(self):
        unit = parse(SOURCE)
        children = list(iter_child_nodes(unit))
        assert len(children) == 1  # the function definition

    def test_walk_count_is_stable(self):
        unit = parse(SOURCE)
        assert len(list(walk(unit))) == len(list(walk(unit)))


class TestNodeVisitor:
    def test_dispatch_by_class_name(self):
        seen = []

        class Collector(NodeVisitor):
            def visit_For(self, node):
                seen.append("for")
                self.generic_visit(node)

            def visit_Assign(self, node):
                seen.append("assign")
                self.generic_visit(node)

        Collector().visit(parse(SOURCE))
        assert seen.count("for") == 1
        assert seen.count("assign") >= 1

    def test_generic_visit_recurses(self):
        counts = {"ident": 0}

        class Counter(NodeVisitor):
            def visit_Ident(self, node):
                counts["ident"] += 1

        Counter().visit(parse(SOURCE))
        assert counts["ident"] > 0


class TestNodeTransformer:
    def test_replace_node(self):
        unit = parse("void f(void) { x = 1; }")

        class Renamer(NodeTransformer):
            def visit_Ident(self, node):
                if node.name == "x":
                    return Ident(name="y")
                return node

        Renamer().visit(unit)
        assert "y = 1;" in to_source(unit)

    def test_remove_statement(self):
        unit = parse("void f(void) { x = 1; y = 2; }")

        class Remover(NodeTransformer):
            def visit_ExprStmt(self, node):
                if isinstance(node.expr, Assign) and node.expr.lhs.name == "x":
                    return None
                return node

        Remover().visit(unit)
        text = to_source(unit)
        assert "x = 1" not in text
        assert "y = 2" in text

    def test_splice_list(self):
        unit = parse("void f(void) { x = 1; }")

        class Duplicator(NodeTransformer):
            def visit_ExprStmt(self, node):
                clone = node.clone()
                return [node, clone]

        Duplicator().visit(unit)
        assert to_source(unit).count("x = 1;") == 2

    def test_clone_is_deep(self):
        unit = parse("void f(void) { x = 1; }")
        func = unit.function("f")
        clone = func.clone()
        clone.body.stmts[0].expr.rhs = IntLit(text="2")
        assert "x = 1;" in to_source(unit)
