"""Unit tests for the CIR static analyses."""

import pytest

from repro.cir import (
    census,
    collect_loops,
    eval_const,
    macro_environment,
    max_loop_depth,
    omp_parallel_loops,
    parse,
)
from repro.cir.analysis import LoopInfo


def loops_of(source, func="f"):
    unit = parse(source)
    return collect_loops(unit.function(func).body)


TRIPLE_NEST = """
#define N 100
void f(int n) {
  int i, j, k;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      for (k = 0; k < n; k++)
        x += 1;
}
"""


class TestEvalConst:
    def test_literal(self):
        unit = parse("#define N 4\n")
        env = macro_environment(unit)
        assert env["N"] == 4

    @pytest.mark.parametrize(
        "text,expected",
        [("1 + 2", 3), ("2 * 3", 6), ("7 - 2", 5), ("9 / 2", 4), ("9 % 4", 1), ("-3", -3)],
    )
    def test_arithmetic(self, text, expected):
        unit = parse(f"void f(void) {{ x = {text}; }}")
        expr = unit.function("f").body.stmts[0].expr.rhs
        assert eval_const(expr) == expected

    def test_identifier_from_env(self):
        unit = parse("void f(void) { x = N - 1; }")
        expr = unit.function("f").body.stmts[0].expr.rhs
        assert eval_const(expr, {"N": 10}) == 9
        assert eval_const(expr, {}) is None

    @pytest.mark.parametrize(
        "text,expected",
        [
            # C division/modulo truncate toward zero / follow the dividend
            ("-7 / 2", -3),
            ("7 / -2", -3),
            ("-7 % 2", -1),
            ("7 % -2", 1),
            ("-(3 + 4)", -7),
            ("+5", 5),
            ("-(-5)", 5),
        ],
    )
    def test_signed_division_and_unary(self, text, expected):
        unit = parse(f"void f(void) {{ x = {text}; }}")
        expr = unit.function("f").body.stmts[0].expr.rhs
        assert eval_const(expr) == expected

    @pytest.mark.parametrize("text", ["1 / 0", "1 % 0", "-UNKNOWN", "UNKNOWN + 1"])
    def test_unresolvable_returns_none(self, text):
        unit = parse(f"void f(void) {{ x = {text}; }}")
        expr = unit.function("f").body.stmts[0].expr.rhs
        assert eval_const(expr) is None

    def test_env_resolves_through_unary_minus(self):
        unit = parse("void f(void) { x = -M; }")
        expr = unit.function("f").body.stmts[0].expr.rhs
        assert eval_const(expr, {"M": 6}) == -6


class TestLoopCollection:
    def test_nesting_depths(self):
        loops = loops_of(TRIPLE_NEST)
        assert [l.depth for l in loops] == [0, 1, 2]

    def test_parent_child_links(self):
        loops = loops_of(TRIPLE_NEST)
        assert loops[1].parent is loops[0]
        assert loops[0].children == [loops[1]]
        assert not loops[2].children

    def test_induction_variables(self):
        loops = loops_of(TRIPLE_NEST)
        assert [l.induction_variable for l in loops] == ["i", "j", "k"]

    def test_max_depth(self):
        unit = parse(TRIPLE_NEST)
        assert max_loop_depth(unit.function("f")) == 3

    def test_sibling_loops_same_depth(self):
        source = """
void f(int n) {
  int i;
  for (i = 0; i < n; i++) x = 1;
  for (i = 0; i < n; i++) x = 2;
}
"""
        loops = loops_of(source)
        assert [l.depth for l in loops] == [0, 0]

    def test_declaration_init_induction_variable(self):
        loops = loops_of("void f(int n) { for (int i = 0; i < n; i++) x = 1; }")
        assert loops[0].induction_variable == "i"


class TestTripCount:
    def test_simple_upward(self):
        loops = loops_of(TRIPLE_NEST)
        assert loops[0].trip_count({"n": 100}) == 100

    def test_inclusive_bound(self):
        loops = loops_of("void f(int n) { int i; for (i = 0; i <= n; i++) x = 1; }")
        assert loops[0].trip_count({"n": 10}) == 11

    def test_downward_loop(self):
        loops = loops_of("void f(int n) { int i; for (i = n - 1; i >= 0; i--) x = 1; }")
        assert loops[0].trip_count({"n": 8}) == 8

    def test_strict_downward(self):
        loops = loops_of("void f(int n) { int i; for (i = n; i > 0; i--) x = 1; }")
        assert loops[0].trip_count({"n": 8}) == 8

    def test_stride_two(self):
        loops = loops_of("void f(int n) { int i; for (i = 0; i < n; i += 2) x = 1; }")
        assert loops[0].trip_count({"n": 9}) == 5

    def test_nonconstant_bound_returns_none(self):
        loops = loops_of("void f(int n) { int i; for (i = 0; i < m; i++) x = 1; }")
        assert loops[0].trip_count({"n": 4}) is None

    def test_zero_span(self):
        loops = loops_of("void f(void) { int i; for (i = 5; i < 5; i++) x = 1; }")
        assert loops[0].trip_count() == 0

    def test_bounds_and_midpoint(self):
        loops = loops_of("void f(int n) { int i; for (i = 2; i < 10; i++) x = 1; }")
        assert loops[0].bounds() == (2, 10)
        assert loops[0].midpoint() == 6

    def test_stride_two_inclusive(self):
        loops = loops_of("void f(int n) { int i; for (i = 0; i <= n; i += 2) x = 1; }")
        assert loops[0].trip_count({"n": 8}) == 5

    def test_downward_stride_two(self):
        loops = loops_of("void f(int n) { int i; for (i = n; i > 0; i -= 2) x = 1; }")
        assert loops[0].trip_count({"n": 8}) == 4

    def test_assign_form_step(self):
        loops = loops_of(
            "void f(int n) { int i; for (i = 0; i < n; i = i + 3) x = 1; }"
        )
        assert loops[0].trip_count({"n": 10}) == 4

    def test_assign_form_downward(self):
        loops = loops_of(
            "void f(int n) { int i; for (i = n; i > 0; i = i - 3) x = 1; }"
        )
        assert loops[0].trip_count({"n": 9}) == 3

    def test_direction_mismatch_returns_none(self):
        # counts away from the bound: non-terminating, not a trip count
        loops = loops_of("void f(int n) { int i; for (i = 0; i < n; i -= 1) x = 1; }")
        assert loops[0].trip_count({"n": 10}) is None
        loops = loops_of("void f(int n) { int i; for (i = n; i > 0; i += 1) x = 1; }")
        assert loops[0].trip_count({"n": 10}) is None

    def test_zero_step_returns_none(self):
        loops = loops_of("void f(int n) { int i; for (i = 0; i < n; i += 0) x = 1; }")
        assert loops[0].trip_count({"n": 10}) is None

    def test_macro_valued_step(self):
        loops = loops_of(
            "void f(int n) { int i; for (i = 0; i < n; i += S) x = 1; }"
        )
        assert loops[0].trip_count({"n": 10, "S": 5}) == 2
        assert loops[0].trip_count({"n": 10}) is None

    def test_locally_constant_facts_resolve_bounds(self):
        # the interval analysis hands trip_count per-loop facts for
        # bounds held in locally-constant variables, not macros
        loops = loops_of("void f(void) { int i; for (i = 0; i < n; i++) x = 1; }")
        assert loops[0].trip_count() is None
        assert loops[0].trip_count({}, {"n": 12}) == 12
        # facts shadow env the way locals shadow macro aliases
        assert loops[0].trip_count({"n": 6}, {"n": 12}) == 12

    def test_empty_init_with_step_recovers_induction(self):
        # an empty init clause no longer defeats the analysis: the
        # step expression identifies the induction variable
        loops = loops_of("void f(int n) { int i; i = 0; for (; i < n; i++) x = 1; }")
        assert loops[0].induction_variable == "i"


class TestCensus:
    def test_counts_fp_and_int(self):
        source = """
#define N 4
void f(int n, double A[N]) {
  int i;
  for (i = 0; i < n; i++)
    A[i] = A[i] * 2.0 + 1.0;
}
"""
        stats = census(parse(source).function("f"))
        assert stats.binary_fp_ops == 2  # * and +
        assert stats.array_stores == 1
        assert stats.array_loads == 1
        assert stats.comparisons == 1

    def test_counts_calls_and_math(self):
        source = "void f(double x) { y = sqrt(x) + helper(x); }"
        stats = census(parse(source).function("f"))
        assert stats.calls == 2
        assert stats.math_calls == 1

    def test_counts_branches(self):
        source = "void f(int a) { if (a) x = 1; y = a > 0 ? 1 : 2; }"
        stats = census(parse(source).function("f"))
        assert stats.branches == 2

    def test_divisions(self):
        source = "void f(double a, double b) { x = a / b; }"
        stats = census(parse(source).function("f"))
        assert stats.divisions == 1

    def test_memory_ops_property(self):
        source = "#define N 4\nvoid f(double A[N]) { A[0] = A[1] + A[2]; }"
        stats = census(parse(source).function("f"))
        assert stats.memory_ops == stats.array_loads + stats.array_stores == 3


class TestOmpQueries:
    def test_omp_parallel_loops_found(self):
        source = (
            "void f(int n) {\n"
            "  int i;\n"
            "#pragma omp parallel for\n"
            "  for (i = 0; i < n; i++)\n"
            "    x = i;\n"
            "}\n"
        )
        unit = parse(source)
        pragmas = omp_parallel_loops(unit.function("f"))
        assert len(pragmas) == 1

    def test_non_omp_pragma_ignored(self):
        source = "void f(void) {\n#pragma scop\n x = 1;\n}\n"
        unit = parse(source)
        assert omp_parallel_loops(unit.function("f")) == []

    def test_macro_environment_skips_non_numeric(self):
        unit = parse("#define DATA_TYPE double\n#define N 16\n")
        env = macro_environment(unit)
        assert env == {"N": 16}
