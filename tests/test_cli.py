"""Tests for the `socrates` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--threads", "1,4,16", "--repetitions", "2"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["list"],
            ["features", "2mm"],
            ["weave", "2mm", "--source"],
            ["build", "2mm", "--oplist", "x.json"],
            ["fig4", "--app", "mvt", "--steps", "5"],
            ["fig5", "--duration", "30"],
            ["table1"],
            ["build", "2mm", "--stage-report", "--workers", "2"],
            ["stats", "2mm", "--threads", "1,4", "--repetitions", "1"],
            ["stats", "2mm", "--json"],
            ["build", "2mm", "--stage-report", "--json"],
            ["bench", "list"],
            ["bench", "run", "--scenario", "single_build", "--repeats", "2"],
            ["bench", "gate", "--all", "--threshold", "1.5", "--out-dir", "x"],
            ["bench", "compare", "--baseline-dir", "b", "--json"],
            ["obs", "diff", "a.json", "b.json", "--limit", "5"],
            ["obs", "diff", "a.json", "b.json", "--json"],
            ["obs", "top", "--from", "m.prom", "--once"],
            ["obs", "top", "--once", "--alerts"],
            ["obs", "incidents", "record", "--duration", "2.0"],
            ["obs", "incidents", "record", "mvt", "--machine", "xeon_2s"],
            ["obs", "incidents", "list", "--dir", "x"],
            ["obs", "incidents", "show", "inc-abc", "--dir", "x"],
            ["obs", "incidents", "report", "--latest"],
            ["obs", "incidents", "report", "inc-abc"],
            ["obs", "runs", "record", "build", "2mm", "--store", "wh"],
            ["obs", "runs", "record", "bench", "single_build", "--store", "wh",
             "--label", "r1", "--inject-slowdown", "engine.evaluate:2.0"],
            ["obs", "runs", "record", "trace", "mvt", "--store", "wh",
             "--duration", "3", "--json"],
            ["obs", "runs", "record", "dse", "mvt", "--store", "wh",
             "--seed", "0xBEEF", "--machine", "biglittle_8p8e"],
            ["obs", "runs", "list", "--store", "wh", "--json"],
            ["obs", "runs", "show", "abc123", "--store", "wh"],
            ["obs", "runs", "pin", "abc123", "--store", "wh"],
            ["obs", "runs", "unpin", "abc123", "--store", "wh"],
            ["obs", "runs", "gc", "--store", "wh", "--keep", "3", "--dry-run"],
            ["obs", "lineage", "run:abc123", "--store", "wh", "--json"],
            ["obs", "query", "kind=bench and seed=0", "--store", "wh",
             "--agg", "median:wall_s"],
            ["obs", "trend", "single_build", "--store", "wh", "--window", "5",
             "--threshold", "0.2", "--json"],
            ["build", "2mm", "--store", "wh", "--store-label", "x"],
            ["dse", "mvt", "--store", "wh"],
            ["bench", "run", "--scenario", "single_build", "--store", "wh"],
            ["bench", "gate", "--history-store", "wh", "--history-window", "4"],
            ["check", "2mm"],
            ["check", "--all", "--json", "--out", "check.json"],
            ["check", "--all", "--sarif"],
            ["check", "--source", "file.c"],
            ["check", "mvt", "--pristine-only"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_check_json_and_sarif_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--all", "--json", "--sarif"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "2mm" in out and "seidel-2d" in out

    def test_features(self, capsys):
        assert main(["features", "mvt"]) == 0
        out = capsys.readouterr().out
        assert "ft16_loops" in out

    def test_features_unknown_app_fails(self, capsys):
        assert main(["features", "nope"]) == 2

    def test_weave_metrics_only(self, capsys):
        assert main(["weave", "mvt"]) == 0
        out = capsys.readouterr().out
        assert "Att=" in out and "Bloat=" in out
        assert "#pragma GCC optimize" not in out

    def test_weave_with_source(self, capsys):
        assert main(["weave", "mvt", "--source"]) == 0
        out = capsys.readouterr().out
        assert "#pragma GCC optimize" in out
        assert "kernel_mvt__wrapper" in out

    def test_build_writes_artifacts(self, tmp_path, capsys):
        oplist = tmp_path / "kb.json"
        source = tmp_path / "adaptive.c"
        code = main(
            ["build", "mvt", "--oplist", str(oplist), "--source-out", str(source)]
            + FAST
        )
        assert code == 0
        assert oplist.exists() and source.exists()
        document = json.loads(oplist.read_text())
        assert document["format"] == 1
        assert len(document["points"]) == 8 * 3 * 2
        assert "margot_init();" in source.read_text()

    def test_build_stage_report(self, capsys):
        assert main(["build", "mvt", "--stage-report"] + FAST) == 0
        out = capsys.readouterr().out
        report = json.loads(out[out.index("{") :])
        stages = [entry["stage"] for entry in report["stages"]]
        assert stages == ["characterize", "prune", "weave", "profile", "assemble"]
        assert report["totals"]["points_evaluated"] > 0

    def test_invalid_repetitions_reported_cleanly(self, capsys):
        assert main(["build", "2mm", "--threads", "1", "--repetitions", "0"]) == 2
        err = capsys.readouterr().err
        assert "dse_repetitions must be >= 1" in err

    def test_invalid_workers_reported_cleanly(self, capsys):
        assert main(["build", "2mm", "--workers", "-1"] + FAST) == 2
        err = capsys.readouterr().err
        assert "max_workers" in err

    def test_stats(self, capsys):
        assert main(["stats", "mvt"] + FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "mvt"
        assert payload["backend"] == "serial"
        assert payload["engine"]["compile_cache"]["misses"] > 0
        assert len(payload["stages"]) == 5

    def test_stats_json_single_line(self, capsys):
        assert main(["stats", "mvt", "--json"] + FAST) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1  # exactly one machine-readable line
        payload = json.loads(out)
        assert payload["app"] == "mvt"
        assert len(payload["stages"]) == 5

    def test_build_json_stage_report(self, capsys):
        assert main(["build", "mvt", "--stage-report", "--json"] + FAST) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # the whole stdout is one JSON document
        assert payload["app"] == "mvt"
        assert payload["knowledge_points"] > 0
        assert len(payload["custom_flags"]) == 4
        stages = [entry["stage"] for entry in payload["stage_report"]["stages"]]
        assert stages == ["characterize", "prune", "weave", "profile", "assemble"]

    def test_build_json_without_stage_report(self, capsys):
        assert main(["build", "mvt", "--json"] + FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "stage_report" not in payload
        assert payload["coverage"] == 1.0

    def test_fig4(self, capsys):
        assert main(["fig4", "--app", "mvt", "--steps", "4"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert out.count("\n") >= 5

    def test_table1_row_count(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        # header + 12 benchmarks
        assert sum(1 for line in out.splitlines() if line.strip()) >= 13

    def test_fig3_subset(self, capsys):
        assert main(["fig3", "--apps", "mvt"] + FAST) == 0
        out = capsys.readouterr().out
        assert "POWER" in out and "THROUGHPUT" in out
        assert "#" in out  # boxplot medians rendered

    def test_fig5_short(self, capsys):
        assert main(["fig5", "--app", "mvt", "--duration", "3"] + FAST) == 0
        out = capsys.readouterr().out
        assert "Power [W]" in out and "OMP threads" in out

    def test_trace_from_config(self, tmp_path, capsys):
        config = {
            "kernel": "mvt",
            "states": [
                {
                    "name": "eff",
                    "rank": {
                        "direction": "maximize",
                        "composition": "geometric",
                        "fields": [
                            {"metric": "throughput", "coefficient": 1.0},
                            {"metric": "power", "coefficient": -2.0},
                        ],
                    },
                },
                {
                    "name": "perf",
                    "rank": {
                        "direction": "maximize",
                        "fields": [{"metric": "throughput"}],
                    },
                },
            ],
            "active_state": "eff",
        }
        config_path = tmp_path / "margot.json"
        config_path.write_text(json.dumps(config))
        csv_path = tmp_path / "trace.csv"
        code = main(
            ["trace", str(config_path), "--duration", "2", "--csv", str(csv_path)]
            + FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eff" in out and "perf" in out
        assert csv_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("timestamp,state,compiler")


class TestMargotHeaderCommand:
    def test_margot_header_to_file(self, tmp_path, capsys):
        config = {
            "kernel": "mvt",
            "states": [
                {
                    "name": "perf",
                    "rank": {
                        "direction": "maximize",
                        "fields": [{"metric": "throughput"}],
                    },
                }
            ],
        }
        config_path = tmp_path / "margot.json"
        config_path.write_text(json.dumps(config))
        out_path = tmp_path / "margot.h"
        code = main(["margot-header", str(config_path), "--out", str(out_path)] + FAST)
        assert code == 0
        header = out_path.read_text()
        assert "void margot_update(int *version, int *threads)" in header
        # the generated header is parseable by the CIR frontend
        from repro.cir import parse

        assert parse(header).has_function("margot_update")


class TestRunCommand:
    def test_run_original(self, capsys):
        assert main(["run", "2mm", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "main() returned 0" in out
        assert "D: shape=(6, 6)" in out

    def test_run_weaved_any_version_same_checksum(self, capsys):
        checksums = []
        for version in ("0", "9"):
            assert main(["run", "mvt", "--weaved", "--version", version, "--size", "6"]) == 0
            out = capsys.readouterr().out
            line = next(l for l in out.splitlines() if l.strip().startswith("x1:"))
            checksums.append(line.split("checksum=")[1])
        assert checksums[0] == checksums[1]


CLEAN_C = "int main() {\n  return 0;\n}\n"

WARN_C = """\
double A[10][10];
void k(int n) {
  int i;
  int j;
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[0][j] = A[0][j] + 1.0;
}
"""

ERR_C = """\
void k(int n) {
  int i;
  double s = 0.0;
  #pragma omp parallel for
  for (i = 0; i < n; i++)
    s = s + 1.0;
}
"""


class TestCheckCommand:
    """The exit-code contract: 0 clean / 2 warnings-only / 3 errors."""

    def _lint(self, tmp_path, name, text, extra=()):
        path = tmp_path / name
        path.write_text(text)
        return main(["check", "--source", str(path), *extra])

    def test_clean_source_exits_0(self, tmp_path, capsys):
        assert self._lint(tmp_path, "clean.c", CLEAN_C) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_warning_source_exits_2(self, tmp_path, capsys):
        assert self._lint(tmp_path, "warn.c", WARN_C) == 2
        out = capsys.readouterr().out
        assert "[OMP002]" in out and "warning" in out

    def test_error_source_exits_3(self, tmp_path, capsys):
        assert self._lint(tmp_path, "err.c", ERR_C) == 3
        out = capsys.readouterr().out
        assert "[OMP001]" in out and "error" in out
        assert "hint:" in out

    def test_json_document(self, tmp_path, capsys):
        assert self._lint(tmp_path, "err.c", ERR_C, ["--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == 1
        assert payload["exit_code"] == 3
        assert payload["diagnostics"][0]["rule"] == "OMP001"

    def test_sarif_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "check.sarif"
        code = self._lint(
            tmp_path, "warn.c", WARN_C, ["--sarif", "--out", str(out_path)]
        )
        assert code == 2
        document = json.loads(out_path.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"][0]["ruleId"] == "OMP002"

    def test_single_app_has_no_errors(self, capsys):
        # mvt's dot-product loops are flagged FPS201 (warnings), so the
        # exit code is 2; what matters is the absence of errors
        assert main(["check", "mvt"]) == 2
        out = capsys.readouterr().out
        assert "2 unit(s), 0 error(s), 2 warning(s)" in out
        assert "FPS201" in out

    def test_stencil_app_is_clean(self, capsys):
        # jacobi-2d has no reductions, no dependences on the parallel
        # axis, and no calls: every rule family stays quiet
        assert main(["check", "jacobi-2d"]) == 0
        out = capsys.readouterr().out
        assert "2 unit(s), 0 error(s), 0 warning(s)" in out

    def test_app_pristine_only(self, capsys):
        assert main(["check", "mvt", "--pristine-only"]) == 2
        assert "1 unit(s)" in capsys.readouterr().out

    def test_no_selection_is_an_error(self, capsys):
        assert main(["check"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_app_fails(self, capsys):
        assert main(["check", "nope"]) == 2

    def test_prune_plan_artifact(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        main(["check", "syr2k", "--prune-plan", str(plan_path)])
        out = capsys.readouterr().out
        assert "Wrote prune plan" in out
        document = json.loads(plan_path.read_text())
        assert document["format"] == 1
        assert document["app"] == "syr2k"
        assert document["trusted"] is True
        assert document["masked"]

    def test_prune_plan_rejects_all(self, tmp_path, capsys):
        code = main(
            ["check", "--all", "--prune-plan", str(tmp_path / "plan.json")]
        )
        assert code == 2
        assert "prune-plan" in capsys.readouterr().err

    def test_metrics_out_counts_diagnostics(self, tmp_path, capsys):
        metrics_path = tmp_path / "check.prom"
        assert main(["check", "mvt", "--metrics-out", str(metrics_path)]) == 2
        text = metrics_path.read_text()
        assert 'socrates_check_diagnostics_total{rule="FPS201"} 2' in text

    def test_audit_out_writes_check_records(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.jsonl"
        assert main(["check", "mvt", "--audit-out", str(audit_path)]) == 2
        records = [
            json.loads(line) for line in audit_path.read_text().splitlines()
        ]
        assert len(records) == 2
        assert all(r["type"] == "check" and r["rule"] == "FPS201" for r in records)


class TestDseCommand:
    def test_pruned_run_verifies_front(self, capsys):
        code = main(["dse", "syr2k", "--prune", "--verify-front", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["fronts_identical"] is True
        assert document["points_masked"] > 0
        assert (
            document["points_evaluated"] + document["points_masked"]
            == document["space_size"]
        )
        assert document["prune_audit_records"] == document["points_masked"]

    def test_unpruned_run(self, capsys):
        assert main(["dse", "mvt"]) == 0
        out = capsys.readouterr().out
        assert "0 masked" in out

    def test_plan_file_round_trip(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        main(["check", "syr2k", "--prune-plan", str(plan_path)])
        capsys.readouterr()
        code = main(
            ["dse", "syr2k", "--prune-plan", str(plan_path), "--verify-front"]
        )
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_plan_for_wrong_app_is_rejected(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        main(["check", "syr2k", "--prune-plan", str(plan_path)])
        capsys.readouterr()
        assert main(["dse", "mvt", "--prune-plan", str(plan_path)]) == 2
        assert "prune plan is for" in capsys.readouterr().err

    def test_audit_out_writes_prune_records(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.jsonl"
        assert main(
            ["dse", "syr2k", "--prune", "--audit-out", str(audit_path)]
        ) == 0
        records = [
            json.loads(line) for line in audit_path.read_text().splitlines()
        ]
        assert records
        assert all(r["type"] == "prune" and r["rule"] == "COST001" for r in records)


class TestProfilesAndLoocv:
    def test_profiles_table(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "benchmark" in out
        assert sum(1 for line in out.splitlines() if line.strip()) == 13

    def test_loocv_subset(self, capsys):
        assert main(["loocv", "--apps", "mvt,atax,gemver", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "leave-one-out" in out
        assert "mvt" in out and "random k-subset" in out


class TestObsDiffJson:
    """Satellite: `socrates obs diff --json` emits the machine-readable
    document instead of the table."""

    def write_trace(self, tmp_path, name, pad=0):
        from repro.obs import Observability
        from repro.obs.export import write_chrome_trace

        obs = Observability()
        with obs.tracer.span("build"):
            with obs.tracer.span("stage:weave"):
                pass
            for _ in range(pad):
                with obs.tracer.span("stage:profile"):
                    pass
        path = tmp_path / name
        write_chrome_trace(obs.tracer.spans, path)
        return path

    def test_json_document_round_trips(self, tmp_path, capsys):
        a = self.write_trace(tmp_path, "a.json")
        b = self.write_trace(tmp_path, "b.json", pad=2)
        assert main(["obs", "diff", str(a), str(b), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in document["deltas"]}
        assert by_name["stage:profile"]["count_b"] == 2
        assert by_name["stage:profile"]["count_a"] == 0
        assert by_name["stage:weave"]["count_a"] == 1
        assert document["total_delta_s"] == pytest.approx(
            document["total_b_s"] - document["total_a_s"]
        )

    def test_table_mode_unchanged(self, tmp_path, capsys):
        a = self.write_trace(tmp_path, "a.json")
        assert main(["obs", "diff", str(a), str(a)]) == 0
        out = capsys.readouterr().out
        assert "trace diff:" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    def test_missing_trace_is_exit_2(self, tmp_path, capsys):
        a = self.write_trace(tmp_path, "a.json")
        assert main(["obs", "diff", str(a), str(tmp_path / "gone.json")]) == 2
        assert "gone.json" in capsys.readouterr().err


class TestObsTopHardening:
    """Satellite: `obs top --from` fails with a named ValueError (exit
    2), never a traceback, on missing/truncated/malformed files."""

    def test_missing_file(self, tmp_path, capsys):
        assert main(["obs", "top", "--from", str(tmp_path / "no.prom"), "--once"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no.prom" in err

    def test_directory_instead_of_file(self, tmp_path, capsys):
        assert main(["obs", "top", "--from", str(tmp_path), "--once"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_truncated_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        path.write_text("# TYPE socrates_builds_total counter\nsocrates_builds_tot")
        assert main(["obs", "top", "--from", str(path), "--once"]) == 2
        err = capsys.readouterr().err
        assert "m.prom" in err

    def test_malformed_sample_line(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        path.write_text("socrates_builds_total not-a-number\n")
        assert main(["obs", "top", "--from", str(path), "--once"]) == 2
        assert "m.prom" in capsys.readouterr().err

    def test_valid_file_renders(self, tmp_path, capsys):
        path = tmp_path / "m.prom"
        path.write_text(
            "# TYPE socrates_builds_total counter\nsocrates_builds_total 3\n"
        )
        assert main(["obs", "top", "--from", str(path), "--once"]) == 0
        assert "socrates" in capsys.readouterr().out


class TestIncidentPipeline:
    """`obs incidents record | list | show | report` end to end."""

    @pytest.fixture(scope="class")
    def incident_dir(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("incidents")
        code = main(
            [
                "obs",
                "incidents",
                "record",
                "--duration",
                "2.0",
                "--repetitions",
                "1",
                "--threads",
                "1,2",
                "--out-dir",
                str(out_dir),
            ]
        )
        assert code == 0
        return out_dir

    def test_record_writes_deterministic_bundles(self, incident_dir, capsys):
        names = sorted(path.name for path in incident_dir.iterdir())
        assert names == [
            "INC_inc-5d97b2c83b17.json",
            "INC_inc-9e329dda0eaa.json",
        ]

    def test_bundles_validate(self, incident_dir, capsys):
        paths = sorted(str(path) for path in incident_dir.iterdir())
        assert main(["obs", "validate", *paths]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2
        assert "incident_id=inc-5d97b2c83b17" in out
        assert "kernel=mvt" in out

    def test_list(self, incident_dir, capsys):
        assert main(["obs", "incidents", "list", "--dir", str(incident_dir)]) == 0
        out = capsys.readouterr().out
        assert "inc-5d97b2c83b17" in out and "inc-9e329dda0eaa" in out
        assert "budget_burn:package_cap" in out

    def test_show_by_prefix(self, incident_dir, capsys):
        code = main(
            ["obs", "incidents", "show", "inc-5d97", "--dir", str(incident_dir)]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["incident_id"] == "inc-5d97b2c83b17"
        assert document["kernel"] == "mvt"

    def test_ambiguous_prefix_is_exit_2(self, incident_dir, capsys):
        code = main(["obs", "incidents", "show", "inc-", "--dir", str(incident_dir)])
        assert code == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_unknown_prefix_is_exit_2(self, incident_dir, capsys):
        code = main(
            ["obs", "incidents", "show", "inc-zzzz", "--dir", str(incident_dir)]
        )
        assert code == 2
        assert "no incident id starts with" in capsys.readouterr().err

    def test_report_latest_names_offender(self, incident_dir, capsys):
        code = main(
            ["obs", "incidents", "report", "--latest", "--dir", str(incident_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "inc-9e329dda0eaa" in out  # highest t wins
        assert "budget_burn:package_cap" in out
        assert "kernel.execute" in out
        assert "domain" in out and "package" in out

    def test_empty_dir_list_is_friendly(self, tmp_path, capsys):
        # list prints a notice; show/report raise the named error
        assert main(["obs", "incidents", "list", "--dir", str(tmp_path)]) == 0
        assert "no incident bundles" in capsys.readouterr().out
        assert main(["obs", "incidents", "report", "--latest", "--dir", str(tmp_path)]) == 2
        assert "no INC_*.json incident bundles found" in capsys.readouterr().err
