"""Tests for the performance observatory: `repro.bench` + `repro.obs.diff`.

Covers the robust statistics, the scenario harness, baseline
persistence, the MAD-scaled regression gate (including an injected
slowdown that the gate must attribute to the offending span), the
span-level trace diff, the label-escaping round trip through the
Prometheus exporter, the dashboard renderer, and the ``socrates bench``
/ ``socrates obs diff`` / ``socrates obs top`` CLI surface.
"""

import json
import time

import pytest

from repro.bench import (
    SCHEMA,
    BenchBaseline,
    RobustStats,
    SpanTimer,
    baseline_filename,
    compare_result,
    load_baseline,
    mad,
    median,
    peak_rss_kb,
    run_scenario,
    save_baseline,
)
from repro.bench import scenarios as scenarios_mod
from repro.bench.scenarios import all_scenarios, get_scenario, quick_scenarios
from repro.cli import main
from repro.obs import Observability
from repro.obs.dashboard import live_dashboard, render_dashboard
from repro.obs.diff import (
    aggregate_spans,
    diff_chrome_traces,
    diff_span_lists,
    format_diff,
    profile_chrome_trace,
)
from repro.obs.export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    canonical_labels,
    escape_label_value,
    unescape_label_value,
)
from repro.obs.tracing import Tracer
from repro.obs.validate import validate_chrome_trace, validate_prometheus_text


class FakeClock:
    """Deterministic monotonic clock for tracer tests."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# ---------------------------------------------------------------------------
# robust statistics
# ---------------------------------------------------------------------------


class TestRobustStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_ignores_outliers(self):
        # one wild outlier moves the mean by ~200 but the MAD barely
        samples = [1.0, 1.1, 0.9, 1.0, 1000.0]
        assert mad(samples) == pytest.approx(0.1)

    def test_mad_raw_no_consistency_factor(self):
        assert mad([0.0, 1.0, 2.0]) == 1.0

    def test_from_samples_round_trip(self):
        stats = RobustStats.from_samples([2.0, 1.0, 4.0])
        assert (stats.n, stats.median, stats.min, stats.max) == (3, 2.0, 1.0, 4.0)
        assert RobustStats.from_dict(stats.as_dict()) == stats

    def test_from_dict_malformed(self):
        with pytest.raises(ValueError, match="malformed robust-stats"):
            RobustStats.from_dict({"n": 3, "median": "xx"})
        with pytest.raises(ValueError):
            RobustStats.from_samples([])


# ---------------------------------------------------------------------------
# span-based measurement
# ---------------------------------------------------------------------------


class TestSpanTimer:
    def test_wrap_records_spans(self):
        timer = SpanTimer()
        double = timer.wrap("double", lambda x: 2 * x)
        assert [double(n) for n in (1, 2, 3)] == [2, 4, 6]
        assert timer.count("double") == 3
        assert timer.total_s("double") >= 0.0
        assert len(timer.durations_s("double")) == 3

    def test_call_and_totals(self):
        timer = SpanTimer()
        assert timer.call("add", lambda a, b: a + b, 2, 3) == 5
        totals = timer.totals()
        assert set(totals) == {"add"}
        timer.clear()
        assert timer.totals() == {}

    def test_peak_rss_positive_on_linux(self):
        assert peak_rss_kb() > 0


# ---------------------------------------------------------------------------
# the scenario harness
# ---------------------------------------------------------------------------


@pytest.fixture
def synthetic_scenario():
    """A registered scenario with an injectable slowdown and a
    twistable fingerprint; unregistered afterwards."""
    name = "_test_synthetic"
    control = {"delay_s": 0.0, "points": 7}

    def runner(obs):
        with obs.tracer.span("work:fast"):
            pass
        with obs.tracer.span("work:slow"):
            if control["delay_s"]:
                time.sleep(control["delay_s"])
        return {"points": control["points"]}

    scenarios_mod._REGISTRY[name] = scenarios_mod.BenchScenario(
        name=name, description="synthetic test workload", runner=runner
    )
    try:
        yield name, control
    finally:
        del scenarios_mod._REGISTRY[name]


class TestScenarioHarness:
    def test_registry_contents(self):
        names = {scenario.name for scenario in all_scenarios()}
        assert {
            "single_build",
            "suite_sweep",
            "dse_exploration",
            "cobayn_corpus",
            "adaptation_loop",
        } <= names
        quick = {scenario.name for scenario in quick_scenarios()}
        assert "suite_sweep" not in quick  # too slow for the default gate
        assert "dse_exploration" in quick

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_bad_repeats(self, synthetic_scenario):
        name, _ = synthetic_scenario
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(name, repeats=0)

    def test_run_collects_everything(self, synthetic_scenario):
        name, _ = synthetic_scenario
        result = run_scenario(name, repeats=2)
        assert result.repeats == 2 and len(result.wall_s) == 2
        assert set(result.span_totals) == {f"bench:{name}", "work:fast", "work:slow"}
        assert all(len(samples) == 2 for samples in result.span_totals.values())
        assert result.span_counts["work:fast"] == 1
        assert result.fingerprint == {"points": 7}
        assert result.peak_rss_kb > 0
        assert any(span.name == "work:slow" for span in result.spans)
        # wall time is the root bench span, measured through the tracer
        root = [s for s in result.spans if s.name == f"bench:{name}"]
        assert len(root) == 1
        assert result.wall_s[-1] == root[0].duration_s

    def test_nondeterministic_fingerprint_rejected(self, synthetic_scenario):
        name, control = synthetic_scenario
        original = dict(control)

        def runner(obs):
            control["points"] += 1
            return {"points": control["points"]}

        scenarios_mod._REGISTRY[name] = scenarios_mod.BenchScenario(
            name=name, description="drifting", runner=runner
        )
        try:
            with pytest.raises(ValueError, match="nondeterministic"):
                run_scenario(name, repeats=2)
        finally:
            control.update(original)

    def test_duplicate_registration_rejected(self, synthetic_scenario):
        name, _ = synthetic_scenario
        with pytest.raises(ValueError, match="already registered"):
            scenarios_mod.register(name, "dup")(lambda obs: {})


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_save_load_round_trip(self, synthetic_scenario, tmp_path):
        name, _ = synthetic_scenario
        result = run_scenario(name, repeats=3)
        baseline = BenchBaseline.from_result(result)
        path = save_baseline(baseline, tmp_path / baseline_filename(name))
        assert path.name == f"BENCH_{name}.json"
        document = json.loads(path.read_text())
        assert document["schema"] == SCHEMA
        assert document["fingerprint"] == {"points": 7}
        loaded = load_baseline(path)
        assert loaded == baseline

    def test_save_is_deterministic(self, synthetic_scenario, tmp_path):
        name, _ = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=2))
        save_baseline(baseline, tmp_path / "a.json")
        save_baseline(baseline, tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    def test_load_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ValueError, match="cannot read"):
            load_baseline(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(bad)
        bad.write_text("[]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_baseline(bad)
        bad.write_text(json.dumps({"schema": "socrates-bench/999"}))
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            load_baseline(bad)
        bad.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError, match="required field"):
            load_baseline(bad)


# ---------------------------------------------------------------------------
# the regression gate
# ---------------------------------------------------------------------------


class TestGate:
    def test_unchanged_workload_passes(self, synthetic_scenario):
        name, _ = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=3))
        report = compare_result(baseline, run_scenario(name, repeats=3))
        assert report.ok
        assert report.fingerprint_ok
        assert not report.offenders
        assert "all spans within thresholds" in report.format()

    def test_injected_slowdown_names_the_span(self, synthetic_scenario):
        name, control = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=3))
        control["delay_s"] = 0.25
        report = compare_result(
            baseline,
            run_scenario(name, repeats=2),
            threshold=0.5,
            mad_k=6.0,
            min_delta_s=0.01,
        )
        assert not report.ok
        assert report.wall.regressed
        offenders = [verdict.name for verdict in report.offenders]
        assert "work:slow" in offenders
        assert "work:fast" not in offenders
        text = report.format()
        assert "REGRESSION attributed to span" in text
        assert "'work:slow'" in text or "'bench:" in text.split("attributed")[1]
        # the trace diff ranks the slow span first among real changes
        assert report.diff is not None
        top_names = [d.name for d in report.diff.deltas[:2]]
        assert "work:slow" in top_names

    def test_fingerprint_drift_fails_without_timing(self, synthetic_scenario):
        name, control = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=2))
        control["points"] = 8
        report = compare_result(baseline, run_scenario(name, repeats=2))
        assert not report.ok
        assert not report.fingerprint_ok
        assert report.fingerprint_diffs == {"points": (7, 8)}
        assert "fingerprint DRIFTED" in report.format()

    def test_added_and_removed_spans(self, synthetic_scenario):
        name, _ = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=2))

        def runner(obs):
            with obs.tracer.span("work:new"):
                pass
            return {"points": 7}

        scenarios_mod._REGISTRY[name] = scenarios_mod.BenchScenario(
            name=name, description="reshaped", runner=runner
        )
        report = compare_result(baseline, run_scenario(name, repeats=2))
        by_name = {verdict.name: verdict for verdict in report.stages}
        assert by_name["work:slow"].status == "removed"
        assert not by_name["work:slow"].regressed
        assert by_name["work:new"].status == "added"
        assert not by_name["work:new"].regressed  # under the absolute floor

    def test_scenario_mismatch_rejected(self, synthetic_scenario):
        name, _ = synthetic_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=1))
        result = run_scenario(name, repeats=1)
        object.__setattr__(baseline, "scenario", "other")
        with pytest.raises(ValueError, match="baseline is for scenario"):
            compare_result(baseline, result)


# ---------------------------------------------------------------------------
# trace diffing
# ---------------------------------------------------------------------------


def _spans(names_durations):
    tracer = Tracer(clock=FakeClock(step=0.0))
    clock = tracer._clock  # drive durations explicitly
    for name, duration in names_durations:
        with tracer.span(name):
            clock.now += duration
    return tracer.spans


class TestTraceDiff:
    def test_identical_traces_diff_to_exactly_zero(self):
        spans = _spans([("a", 1.0), ("b", 2.0), ("a", 0.5)])
        diff = diff_span_lists(spans, spans)
        assert diff.total_delta_s == 0.0
        assert all(delta.status == "unchanged" for delta in diff.deltas)
        assert all(delta.delta_s == 0.0 for delta in diff.deltas)

    def test_aggregation_counts_and_totals(self):
        aggregates = aggregate_spans(_spans([("a", 1.0), ("a", 2.0), ("b", 4.0)]))
        assert aggregates["a"].count == 2
        assert aggregates["a"].total_s == pytest.approx(3.0)
        assert aggregates["a"].mean_s == pytest.approx(1.5)

    def test_added_removed_changed_sorted_by_delta(self):
        diff = diff_span_lists(
            _spans([("gone", 1.0), ("same", 1.0), ("grew", 1.0)]),
            _spans([("same", 1.0), ("grew", 4.0), ("new", 0.5)]),
        )
        statuses = {delta.name: delta.status for delta in diff.deltas}
        assert statuses == {
            "gone": "removed",
            "same": "unchanged",
            "grew": "changed",
            "new": "added",
        }
        assert diff.deltas[0].name == "grew"  # |+3.0| is the largest
        assert diff.total_delta_s == pytest.approx(2.5)
        assert [d.name for d in diff.by_status("added")] == ["new"]

    def test_chrome_trace_round_trip(self, tmp_path):
        spans = _spans([("x", 1.0), ("y", 0.25), ("x", 0.75)])
        path = tmp_path / "trace.json"
        write_chrome_trace(spans, path)
        profile = profile_chrome_trace(path)
        assert profile["x"].count == 2
        assert profile["x"].total_s == pytest.approx(1.75)
        diff = diff_chrome_traces(path, path)
        assert diff.total_delta_s == 0.0

    def test_profile_rejects_garbage(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            profile_chrome_trace(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError, match="traceEvents"):
            profile_chrome_trace(bad)

    def test_format_diff_table(self):
        diff = diff_span_lists(
            _spans([("alpha", 1.0)]), _spans([("alpha", 3.0)])
        )
        text = format_diff(diff, label_a="base", label_b="new")
        assert "t(base)" in text and "t(new)" in text
        assert "alpha" in text and "+2.0000" in text
        assert text.splitlines()[-1].startswith("TOTAL")


# ---------------------------------------------------------------------------
# exporter edge cases + escaping round trip
# ---------------------------------------------------------------------------


class TestExporterEdgeCases:
    def test_empty_trace_exports_and_validates(self, tmp_path):
        document = chrome_trace([])
        assert [e["ph"] for e in document["traceEvents"]] == ["M", "M"]
        path = tmp_path / "empty.json"
        write_chrome_trace([], path)
        # the exporter handles zero spans; the validator deliberately
        # rejects such a file (an empty trace means broken instrumentation)
        with pytest.raises(ValueError, match="no span events"):
            validate_chrome_trace(path)
        assert profile_chrome_trace(path) == {}

    def test_open_spans_excluded_at_export_time(self):
        tracer = Tracer(clock=FakeClock())
        context = tracer.span("still-open")
        context.__enter__()
        with tracer.span("finished"):
            pass
        document = chrome_trace(tracer.spans)
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert names == ["finished"]
        context.__exit__(None, None, None)
        names = [
            e["name"] for e in chrome_trace(tracer.spans)["traceEvents"] if e["ph"] == "X"
        ]
        assert sorted(names) == ["finished", "still-open"]

    def test_zero_count_histogram_exports_and_validates(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("empty_hist", boundaries=[1.0, 2.0], help="never observed")
        text = prometheus_text(registry)
        assert 'empty_hist_bucket{le="+Inf"} 0' in text
        assert "empty_hist_count 0" in text
        path = tmp_path / "empty.prom"
        path.write_text(text)
        assert validate_prometheus_text(path)["samples"] > 0
        rebuilt = parse_prometheus_text(text)
        instrument = rebuilt.get("empty_hist")
        assert instrument.count == 0 and instrument.total == 0.0

    def test_empty_registry_round_trip(self):
        assert prometheus_text(MetricsRegistry()) == ""
        assert len(parse_prometheus_text("")) == 0


class TestLabelEscaping:
    NASTY = 'back\\slash "quoted"\nnewline'

    def test_escape_unescape_inverse(self):
        escaped = escape_label_value(self.NASTY)
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == self.NASTY

    def test_unescape_rejects_stray_backslash(self):
        with pytest.raises(ValueError, match="bare backslash"):
            unescape_label_value("ends\\")
        with pytest.raises(ValueError, match="invalid escape"):
            unescape_label_value("bad\\q")

    def test_labelled_export_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits_total", help="with\nnewline", labels={"path": self.NASTY}).inc(3)
        registry.gauge("depth", labels={"track": 'say "hi"'}).set(2.5)
        registry.histogram(
            "lat_seconds", boundaries=[0.1, 1.0], labels={"stage": "a\\b"}
        ).observe(0.5)
        text = prometheus_text(registry)
        path = tmp_path / "nasty.prom"
        path.write_text(text)
        validate_prometheus_text(path)  # escaped output passes the validator
        rebuilt = parse_prometheus_text(text)
        counter = rebuilt.get("hits_total", labels={"path": self.NASTY})
        assert counter is not None and counter.value == 3
        assert counter.help == "with\nnewline"
        hist = rebuilt.get("lat_seconds", labels={"stage": "a\\b"})
        assert hist.count == 1 and hist.total == pytest.approx(0.5)
        # byte-exact round trip: export(parse(export(r))) == export(r)
        assert prometheus_text(rebuilt) == text

    def test_validator_rejects_unescaped_output(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text('# TYPE m counter\nm{l="a"b"} 1\n')
        with pytest.raises(ValueError):
            validate_prometheus_text(path)
        path.write_text('# TYPE m counter\nm{l="a\\qb"} 1\n')
        with pytest.raises(ValueError):
            validate_prometheus_text(path)

    def test_label_series_are_distinct_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("reqs", labels={"code": "200"})
        b = registry.counter("reqs", labels={"code": "500"})
        assert a is not b
        assert registry.counter("reqs", labels={"code": "200"}) is a
        assert "reqs" in registry
        assert len(registry) == 2
        with pytest.raises(ValueError, match="invalid label name"):
            canonical_labels({"bad-name": "x"})

    def test_per_series_cumulative_bucket_validation(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("d_seconds", boundaries=[1.0], labels={"s": "a"}).observe(0.5)
        registry.histogram("d_seconds", boundaries=[1.0], labels={"s": "b"}).observe(2.0)
        # two interleaved label series each restart their cumulative
        # counts; the validator must key the check per series
        path = tmp_path / "series.prom"
        path.write_text(prometheus_text(registry))
        validate_prometheus_text(path)


# ---------------------------------------------------------------------------
# dashboard
# ---------------------------------------------------------------------------


class TestDashboard:
    def _registry(self):
        registry = MetricsRegistry()
        registry.gauge("socrates_engine_compile_hits").set(30)
        registry.gauge("socrates_engine_compile_misses").set(10)
        registry.gauge("socrates_engine_points_evaluated").set(1200)
        registry.histogram(
            "socrates_stage_duration_seconds", labels={"stage": "prune"}
        ).observe(0.02)
        return registry

    def test_render_dashboard_sections(self):
        frame = render_dashboard(self._registry())
        assert "SOCRATES observability" in frame
        assert "compile" in frame and "75.0%" in frame
        assert "evaluations: 1200 design points" in frame
        assert 'socrates_stage_duration_seconds{stage="prune"}' in frame
        assert "#" in frame  # a meter/bar actually rendered

    def test_render_zero_count_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("empty_seconds", boundaries=[1.0])
        frame = render_dashboard(registry)
        assert "empty_seconds" in frame and "n=0" in frame

    def test_live_dashboard_draws_until_done(self):
        import io

        stream = io.StringIO()
        ticks = {"n": 0}

        def done():
            ticks["n"] += 1
            return ticks["n"] >= 3

        frames = live_dashboard(
            lambda n: f"frame {n}", done, refresh_s=0.0, stream=stream
        )
        assert frames == 3
        assert "frame 2" in stream.getvalue()


# ---------------------------------------------------------------------------
# determinism: benchmarking on/off must not change seeded outputs
# ---------------------------------------------------------------------------


class TestBenchDeterminism:
    def test_seeded_build_identical_under_bench_harness(self, tmp_path):
        from repro.core.toolflow import SocratesToolflow
        from repro.margot.oplist import save_knowledge
        from repro.polybench.suite import load

        def build(obs):
            flow = SocratesToolflow(
                dse_repetitions=1, thread_counts=[1, 4], obs=obs
            )
            return flow.build(load("mvt"))

        plain = build(None)  # observability (and benchmarking) off
        with Observability().tracer.span("bench:manual"):
            traced = build(Observability())  # the bench code path
        assert plain.adaptive_source == traced.adaptive_source
        save_knowledge(plain.exploration.knowledge, tmp_path / "plain.json")
        save_knowledge(traced.exploration.knowledge, tmp_path / "traced.json")
        assert (tmp_path / "plain.json").read_bytes() == (
            tmp_path / "traced.json"
        ).read_bytes()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestBenchCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "single_build" in out and "suite_sweep" in out
        assert "full" in out and "quick" in out

    def test_bench_run_writes_schema_versioned_baseline(
        self, synthetic_scenario, tmp_path, capsys
    ):
        name, _ = synthetic_scenario
        assert (
            main(
                [
                    "bench",
                    "run",
                    "--scenario",
                    name,
                    "--repeats",
                    "2",
                    "--out-dir",
                    str(tmp_path),
                    "--trace-out-dir",
                    str(tmp_path / "traces"),
                ]
            )
            == 0
        )
        document = json.loads((tmp_path / f"BENCH_{name}.json").read_text())
        assert document["schema"] == SCHEMA
        assert document["repeats"] == 2
        trace = tmp_path / "traces" / f"TRACE_{name}.json"
        assert "traceEvents" in json.loads(trace.read_text())

    def test_bench_run_suite_sweep_acceptance(self, tmp_path, capsys):
        """The acceptance path: one real 12-app sweep baseline."""
        assert (
            main(
                [
                    "bench", "run", "--scenario", "suite_sweep",
                    "--repeats", "1", "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        document = json.loads((tmp_path / "BENCH_suite_sweep.json").read_text())
        assert document["schema"] == SCHEMA
        assert document["fingerprint"]["apps_built"] == 12
        assert document["wall_s"]["median"] > 0
        assert "stage:characterize" in document["stages"]

    def test_bench_run_unknown_scenario(self, capsys):
        assert main(["bench", "run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bench_gate_ok_then_regression(
        self, synthetic_scenario, tmp_path, capsys
    ):
        name, control = synthetic_scenario
        argv = ["--scenario", name, "--repeats", "2", "--baseline-dir", str(tmp_path)]
        assert main(["bench", "run", "--scenario", name, "--repeats", "3",
                     "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()

        # unchanged tree: exit 0
        assert main(["bench", "gate"] + argv) == 0
        assert "bench gate: OK" in capsys.readouterr().out

        # injected slowdown: exit 3, offending span named, artifacts written
        control["delay_s"] = 0.25
        out_dir = tmp_path / "artifacts"
        code = main(
            ["bench", "gate"] + argv + ["--min-delta-s", "0.01", "--out-dir", str(out_dir)]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "bench gate: FAIL" in out
        assert "REGRESSION attributed to span 'work:slow'" in out
        assert (out_dir / f"BENCH_{name}.json").exists()
        gate_doc = json.loads((out_dir / f"GATE_{name}.json").read_text())
        assert gate_doc["ok"] is False
        assert "work:slow" in gate_doc["offenders"]
        assert "work:slow" in (out_dir / f"DIFF_{name}.txt").read_text()

    def test_bench_compare_always_exits_zero(
        self, synthetic_scenario, tmp_path, capsys
    ):
        name, control = synthetic_scenario
        assert main(["bench", "run", "--scenario", name, "--repeats", "2",
                     "--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        control["delay_s"] = 0.2
        assert (
            main(
                [
                    "bench", "compare", "--scenario", name, "--repeats", "1",
                    "--baseline-dir", str(tmp_path), "--min-delta-s", "0.01",
                    "--json",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        reports = json.loads(out)
        assert reports[0]["ok"] is False

    def test_bench_gate_missing_baseline(self, synthetic_scenario, tmp_path, capsys):
        name, _ = synthetic_scenario
        assert (
            main(
                ["bench", "gate", "--scenario", name, "--baseline-dir", str(tmp_path)]
            )
            == 2
        )
        assert "cannot read baseline" in capsys.readouterr().err


class TestObsCli:
    def test_obs_diff_identical_traces(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        write_chrome_trace(_spans([("a", 1.0), ("b", 2.0)]), path)
        assert main(["obs", "diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "+0.0000" in out
        assert "identical in both traces" in out

    def test_obs_diff_json_mode(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(_spans([("x", 1.0)]), a)
        write_chrome_trace(_spans([("x", 2.0)]), b)
        assert main(["obs", "diff", str(a), str(b), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["total_delta_s"] == pytest.approx(1.0)
        assert document["deltas"][0]["name"] == "x"

    def test_obs_diff_bad_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["obs", "diff", str(missing), str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_obs_top_once_from_prom_file(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.gauge("socrates_engine_truth_hits").set(5)
        registry.gauge("socrates_engine_truth_misses").set(5)
        path = tmp_path / "metrics.prom"
        path.write_text(prometheus_text(registry))
        assert main(["obs", "top", "--from", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "SOCRATES observability" in out
        assert "truth" in out and "50.0%" in out

    def test_obs_top_once_live_scenario(self, synthetic_scenario, capsys):
        name, _ = synthetic_scenario
        assert main(["obs", "top", "--scenario", name, "--once"]) == 0
        out = capsys.readouterr().out
        assert "SOCRATES observability" in out
        assert "spans:" in out


# ---------------------------------------------------------------------------
# ratio gating: socrates_bench_ratio gauges vs hand-committed caps
# ---------------------------------------------------------------------------


@pytest.fixture
def ratio_scenario():
    """A registered scenario that publishes a controllable
    ``socrates_bench_ratio`` gauge; unregistered afterwards."""
    name = "_test_ratio"
    control = {"ratio": 1.02, "publish": True}

    def runner(obs):
        with obs.tracer.span("work:steady"):
            pass
        if control["publish"]:
            obs.metrics.gauge(
                "socrates_bench_ratio",
                help="dimensionless ratio measured by a bench scenario",
                labels={"name": "overhead"},
            ).set(control["ratio"])
        return {"points": 1}

    scenarios_mod._REGISTRY[name] = scenarios_mod.BenchScenario(
        name=name, description="ratio test workload", runner=runner
    )
    try:
        yield name, control
    finally:
        del scenarios_mod._REGISTRY[name]


class TestRatioGate:
    def test_ratios_harvested_per_repeat(self, ratio_scenario):
        name, _ = ratio_scenario
        result = run_scenario(name, repeats=3)
        assert result.ratios == {"overhead": [1.02, 1.02, 1.02]}

    def test_baseline_medians_ratios_but_never_invents_limits(self, ratio_scenario):
        name, _ = ratio_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=3))
        assert baseline.ratios == {"overhead": 1.02}
        assert baseline.ratio_limits == {}  # a cap is a policy decision

    def test_limits_pass_through_and_round_trip(self, ratio_scenario, tmp_path):
        name, _ = ratio_scenario
        baseline = BenchBaseline.from_result(
            run_scenario(name, repeats=2), ratio_limits={"overhead": 1.05}
        )
        path = save_baseline(baseline, tmp_path / "BENCH__test_ratio.json")
        loaded = load_baseline(path)
        assert loaded.ratios == baseline.ratios
        assert loaded.ratio_limits == {"overhead": 1.05}

    def test_within_cap_passes(self, ratio_scenario):
        name, _ = ratio_scenario
        baseline = BenchBaseline.from_result(
            run_scenario(name, repeats=2), ratio_limits={"overhead": 1.05}
        )
        report = compare_result(baseline, run_scenario(name, repeats=2))
        assert report.ok
        (verdict,) = report.ratios
        assert not verdict.regressed
        assert verdict.fresh == pytest.approx(1.02)
        assert "within cap" in report.format()

    def test_over_cap_regresses(self, ratio_scenario):
        name, control = ratio_scenario
        baseline = BenchBaseline.from_result(
            run_scenario(name, repeats=2), ratio_limits={"overhead": 1.05}
        )
        control["ratio"] = 1.2
        report = compare_result(baseline, run_scenario(name, repeats=2))
        assert not report.ok
        (verdict,) = report.ratios
        assert verdict.regressed and verdict.fresh == pytest.approx(1.2)
        assert "RATIO 'overhead' REGRESSED" in report.format()
        assert report.as_dict()["ratio_offenders"] == ["overhead"]

    def test_missing_ratio_regresses_as_missing(self, ratio_scenario):
        name, control = ratio_scenario
        baseline = BenchBaseline.from_result(
            run_scenario(name, repeats=2), ratio_limits={"overhead": 1.05}
        )
        control["publish"] = False
        report = compare_result(baseline, run_scenario(name, repeats=2))
        assert not report.ok
        (verdict,) = report.ratios
        assert verdict.regressed
        assert verdict.fresh != verdict.fresh  # NaN: not published
        assert "missing" in report.format()

    def test_uncapped_ratio_is_context_only(self, ratio_scenario):
        name, control = ratio_scenario
        baseline = BenchBaseline.from_result(run_scenario(name, repeats=2))
        control["ratio"] = 99.0  # absurd, but nothing gates it
        report = compare_result(baseline, run_scenario(name, repeats=2))
        assert report.ok
        assert report.ratios == []
