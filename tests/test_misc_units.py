"""Small-unit coverage: value objects, helpers and properties that the
bigger suites exercise only indirectly."""

import numpy as np
import pytest

from repro.cir import Type, parse
from repro.gcc.compiler import Compiler
from repro.gcc.flags import Flag, FlagConfiguration, OptLevel
from repro.machine.executor import ExecutionResult
from repro.machine.topology import Machine, default_machine
from repro.polybench.apps.base import init_matrix, init_vector, scaled
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


class TestTypeObject:
    def test_plain(self):
        assert str(Type(name="int")) == "int"

    def test_qualified_pointer(self):
        text = str(Type(name="double", pointers=1, qualifiers=("static",)))
        assert text == "static double *"

    def test_double_pointer(self):
        assert str(Type(name="char", pointers=2)).endswith("**")

    def test_is_floating(self):
        assert Type(name="double").is_floating
        assert Type(name="long double").is_floating
        assert not Type(name="unsigned long").is_floating

    def test_is_void(self):
        assert Type(name="void").is_void
        assert not Type(name="void", pointers=1).is_void


class TestFlagEnums:
    def test_gcc_names(self):
        assert OptLevel.O3.gcc_name == "-O3"
        assert Flag.NO_IVOPTS.gcc_name == "-fno-ivopts"

    def test_pragma_name_strips_f(self):
        assert Flag.UNROLL_ALL_LOOPS.pragma_name == "unroll-all-loops"

    def test_str_is_label(self):
        config = FlagConfiguration(OptLevel.O2, frozenset({Flag.NO_IVOPTS}))
        assert str(config) == config.label


class TestCompiledKernelProperties:
    def test_label_and_memory_share(self):
        compiled = Compiler().compile(
            profile_kernel(load("atax")), FlagConfiguration(OptLevel.O2)
        )
        assert compiled.label == "-O2"
        assert 0.0 <= compiled.memory_bound_share <= 1.0


class TestExecutionResultProperties:
    def test_zero_division_guarded_by_construction(self):
        result = ExecutionResult(time_s=2.0, power_w=50.0, energy_j=100.0)
        assert result.throughput == 0.5
        assert result.throughput_per_watt_sq == pytest.approx(0.5 / 2500.0)


class TestMachineObject:
    def test_custom_geometry(self):
        machine = Machine(sockets=1, cores_per_socket=4, threads_per_core=1)
        assert machine.physical_cores == 4
        assert machine.logical_cpus == 4
        assert len(machine.core_places()) == 4

    def test_cpu_place_ids_unique_per_core(self):
        machine = default_machine()
        ids = {cpu.place_id for cpu in machine.cpus()}
        assert len(ids) == machine.physical_cores


class TestPolybenchHelpers:
    def test_scaled_respects_minimums(self):
        sizes = scaled({"N": 1000, "TSTEPS": 500}, 0.0001)
        assert sizes["N"] == 4
        assert sizes["TSTEPS"] == 2

    def test_scaled_identity_at_one(self):
        assert scaled({"N": 100}, 1.0) == {"N": 100}

    def test_init_matrix_deterministic_per_seed(self):
        a = init_matrix(np.random.default_rng(1), 5, 6)
        b = init_matrix(np.random.default_rng(1), 5, 6)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (5, 6)

    def test_init_vector_range(self):
        v = init_vector(np.random.default_rng(2), 100)
        assert v.shape == (100,)
        assert np.all(v >= 0.0) and np.all(v < 1.2)

    def test_app_parse_returns_fresh_units(self):
        app = load("mvt")
        unit1, unit2 = app.parse(), app.parse()
        assert unit1 is not unit2
        unit1.decls.clear()
        assert unit2.decls  # independent


class TestWorkloadProperties:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_kernel(load("syrk"))

    def test_density_properties_bounded(self, profile):
        assert 0.0 <= profile.branch_density <= 1.0
        assert 0.0 <= profile.call_density <= 1.0
        assert profile.div_density >= 0.0
        assert profile.math_call_density >= 0.0

    def test_total_ops_composition(self, profile):
        assert profile.total_ops == pytest.approx(
            profile.flops + profile.int_ops + profile.loads + profile.stores
        )

    def test_naive_bytes_eight_per_access(self, profile):
        assert profile.naive_bytes == pytest.approx(
            8.0 * (profile.loads + profile.stores)
        )


class TestWeaverMiscellany:
    def test_weave_error_formatting(self):
        from repro.lara.weaver import WeaveError, Weaver

        weaver = Weaver(parse("void f(void) { }"))
        with pytest.raises(WeaveError, match="no function"):
            weaver.select_function("ghost")

    def test_metrics_start_at_zero(self):
        from repro.lara.weaver import Weaver

        weaver = Weaver(parse("void f(void) { }"))
        assert weaver.metrics.attributes_checked == 0
        assert weaver.metrics.actions_performed == 0

    def test_version_spec_description(self):
        from repro.lara.strategies.multiversioning import VersionSpec
        from repro.machine.openmp import BindingPolicy

        spec = VersionSpec(FlagConfiguration(OptLevel.O2), BindingPolicy.SPREAD)
        assert "-O2" in spec.description and "spread" in spec.description
        assert spec.suffix == "O2_spread"


class TestKnowledgeMisc:
    def test_operating_point_key_order_insensitive(self):
        from repro.margot.knowledge import MetricStats, OperatingPoint

        a = OperatingPoint(knobs={"x": 1, "y": 2}, metrics={"m": MetricStats(1.0)})
        b = OperatingPoint(knobs={"y": 2, "x": 1}, metrics={"m": MetricStats(1.0)})
        assert a.key == b.key

    def test_exploration_result_coverage(self):
        from repro.dse.explorer import ExplorationResult
        from repro.margot.knowledge import KnowledgeBase

        result = ExplorationResult(
            kernel="k",
            knowledge=KnowledgeBase(),
            samples=[],
            explored_points=32,
            space_size=128,
        )
        assert result.coverage == 0.25
