"""Tests for the LARA weaving machinery and the two strategies."""

import pytest

from repro.cir import (
    Call,
    Decl,
    FunctionDef,
    Ident,
    IntLit,
    Pragma,
    Type,
    logical_lines,
    parse,
    to_source,
    walk,
)
from repro.gcc.flags import FlagConfiguration, OptLevel, standard_levels
from repro.lara.metrics import (
    default_versions,
    python_logical_lines,
    strategy_loc,
    weave_benchmark,
)
from repro.lara.strategies.autotuner import AutotunerStrategy
from repro.lara.strategies.multiversioning import (
    THREADS_VARIABLE,
    VERSION_VARIABLE,
    MultiversioningStrategy,
    VersionSpec,
)
from repro.lara.weaver import WeaveError, Weaver
from repro.machine.openmp import BindingPolicy
from repro.polybench.suite import load

SIMPLE = """
#include <stdio.h>
#define N 64
#define DATA_TYPE double

static DATA_TYPE A[N];

void kernel_scale(int n, DATA_TYPE alpha)
{
  int i;
#pragma omp parallel for
  for (i = 0; i < n; i++)
    A[i] = A[i] * alpha;
}

int main(int argc, char **argv)
{
  kernel_scale(N, 1.5);
  kernel_scale(N, 2.0);
  return 0;
}
"""


def simple_versions(count=2):
    configs = [FlagConfiguration(OptLevel.O2), FlagConfiguration(OptLevel.O3)][:count]
    return [
        VersionSpec(compiler=config, binding=binding)
        for config in configs
        for binding in (BindingPolicy.CLOSE, BindingPolicy.SPREAD)
    ]


@pytest.fixture
def weaver():
    return Weaver(parse(SIMPLE, name="simple.c"))


class TestWeaverPrimitives:
    def test_select_functions(self, weaver):
        names = [jp.attr("name") for jp in weaver.select_functions()]
        assert names == ["kernel_scale", "main"]
        assert weaver.metrics.attributes_checked == 2

    def test_select_missing_function_raises(self, weaver):
        with pytest.raises(WeaveError):
            weaver.select_function("nope")

    def test_attribute_reads_counted(self, weaver):
        jp = weaver.select_function("kernel_scale")
        before = weaver.metrics.attributes_checked
        jp.attr("signature")
        jp.attr("param_names")
        assert weaver.metrics.attributes_checked == before + 2

    def test_actions_counted(self, weaver):
        jp = weaver.select_function("kernel_scale")
        before = weaver.metrics.actions_performed
        weaver.clone_function(jp, "kernel_scale__copy")
        weaver.attach_pragma(jp, 'GCC optimize ("O2")')
        assert weaver.metrics.actions_performed == before + 2

    def test_clone_inserted_after_original(self, weaver):
        jp = weaver.select_function("kernel_scale")
        weaver.clone_function(jp, "kernel_scale__v0")
        names = [f.name for f in weaver.unit.functions()]
        assert names.index("kernel_scale__v0") == names.index("kernel_scale") + 1

    def test_clone_is_independent(self, weaver):
        jp = weaver.select_function("kernel_scale")
        clone = weaver.clone_function(jp, "kernel_scale__v0")
        clone.node.body.stmts.clear()
        assert jp.node.body.stmts  # original untouched

    def test_insert_include_once(self, weaver):
        weaver.insert_include("margot.h")
        weaver.insert_include("margot.h")
        includes = [d for d in weaver.unit.decls if type(d).__name__ == "Include"]
        assert sum(1 for d in includes if d.target == "margot.h") == 1

    def test_insert_global_before_first_function(self, weaver):
        weaver.insert_global(
            Decl(type=Type(name="int"), name="control", init=IntLit(text="0"))
        )
        printed = to_source(weaver.unit)
        assert printed.index("int control") < printed.index("void kernel_scale")

    def test_rename_call(self, weaver):
        calls = weaver.select_calls_to("kernel_scale")
        assert len(calls) == 2
        weaver.rename_call(calls[0], "kernel_scale__wrapper")
        printed = to_source(weaver.unit)
        assert "kernel_scale__wrapper(N, 1.5);" in printed
        assert "kernel_scale(N, 2.0);" in printed

    def test_statement_anchored_insertion(self, weaver):
        main = weaver.select_function("main").node
        call = weaver.select_calls_to("kernel_scale")[0].node
        anchor = weaver.statement_containing_call(main, call)
        marker = Decl(type=Type(name="int"), name="before_marker", init=IntLit(text="1"))
        weaver.insert_statement_before(main, anchor, marker)
        printed = to_source(weaver.unit)
        assert printed.index("before_marker") < printed.index("kernel_scale(N, 1.5)")


class TestMultiversioning:
    def test_versions_cloned_with_pragmas(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        results = strategy.apply(weaver, ["kernel_scale"])
        result = results["kernel_scale"]
        assert len(result.version_names) == 4
        printed = to_source(weaver.unit)
        assert printed.count('#pragma GCC optimize ("O2")') == 2  # close+spread
        assert printed.count("proc_bind(spread)") == 2

    def test_omp_pragma_gains_runtime_thread_clause(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        strategy.apply(weaver, ["kernel_scale"])
        printed = to_source(weaver.unit)
        assert f"num_threads({THREADS_VARIABLE})" in printed

    def test_original_kernel_pragma_untouched(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        strategy.apply(weaver, ["kernel_scale"])
        original = weaver.unit.function("kernel_scale")
        pragmas = [n for n in walk(original.body) if isinstance(n, Pragma)]
        assert pragmas[0].text == "omp parallel for"

    def test_wrapper_dispatches_all_versions(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        results = strategy.apply(weaver, ["kernel_scale"])
        wrapper = weaver.unit.function(results["kernel_scale"].wrapper)
        called = {
            node.name
            for node in walk(wrapper.body)
            if isinstance(node, Call) and node.name
        }
        assert called == set(results["kernel_scale"].version_names)

    def test_wrapper_checks_version_variable(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        results = strategy.apply(weaver, ["kernel_scale"])
        wrapper = weaver.unit.function(results["kernel_scale"].wrapper)
        idents = {n.name for n in walk(wrapper.body) if isinstance(n, Ident)}
        assert VERSION_VARIABLE in idents

    def test_call_sites_rewritten(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        results = strategy.apply(weaver, ["kernel_scale"])
        assert results["kernel_scale"].replaced_calls == 2
        printed = to_source(weaver.unit)
        assert "kernel_scale__wrapper(N, 1.5);" in printed

    def test_control_variables_declared(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        strategy.apply(weaver, ["kernel_scale"])
        printed = to_source(weaver.unit)
        assert f"int {VERSION_VARIABLE}" in printed
        assert f"int {THREADS_VARIABLE}" in printed

    def test_weaved_source_reparses(self, weaver):
        strategy = MultiversioningStrategy(simple_versions())
        strategy.apply(weaver, ["kernel_scale"])
        printed = to_source(weaver.unit)
        assert to_source(parse(printed)) == printed

    def test_empty_version_list_rejected(self):
        with pytest.raises(ValueError):
            MultiversioningStrategy([])


class TestAutotunerStrategy:
    def test_margot_calls_weaved_in_order(self, weaver):
        mv = MultiversioningStrategy(simple_versions())
        results = mv.apply(weaver, ["kernel_scale"])
        AutotunerStrategy().apply(weaver, [results["kernel_scale"].wrapper])
        printed = to_source(weaver.unit)
        first_call = printed.index("kernel_scale__wrapper(N, 1.5);")
        assert printed.index("margot_update(", 0, first_call) != -1
        assert printed.index("margot_start_monitor();", 0, first_call) != -1
        assert printed.index("margot_stop_monitor();", first_call) > first_call
        assert printed.index("margot_log();", first_call) > first_call

    def test_init_at_main_entry(self, weaver):
        mv = MultiversioningStrategy(simple_versions())
        results = mv.apply(weaver, ["kernel_scale"])
        AutotunerStrategy().apply(weaver, [results["kernel_scale"].wrapper])
        main = weaver.unit.function("main")
        first = main.body.stmts[0]
        assert isinstance(first.expr, Call) and first.expr.name == "margot_init"

    def test_header_inserted(self, weaver):
        mv = MultiversioningStrategy(simple_versions())
        results = mv.apply(weaver, ["kernel_scale"])
        AutotunerStrategy().apply(weaver, [results["kernel_scale"].wrapper])
        assert '#include "margot.h"' in to_source(weaver.unit)

    def test_both_call_sites_instrumented(self, weaver):
        mv = MultiversioningStrategy(simple_versions())
        results = mv.apply(weaver, ["kernel_scale"])
        outcome = AutotunerStrategy().apply(weaver, [results["kernel_scale"].wrapper])
        assert outcome["kernel_scale__wrapper"].instrumented_calls == 2
        printed = to_source(weaver.unit)
        assert printed.count("margot_update(") == 2

    def test_update_passes_control_variable_addresses(self, weaver):
        mv = MultiversioningStrategy(simple_versions())
        results = mv.apply(weaver, ["kernel_scale"])
        AutotunerStrategy().apply(weaver, [results["kernel_scale"].wrapper])
        printed = to_source(weaver.unit)
        assert f"margot_update(&{VERSION_VARIABLE}, &{THREADS_VARIABLE});" in printed


class TestTable1Metrics:
    def test_python_logical_lines_skips_comments_and_docstrings(self):
        source = '"""Doc."""\n\n# comment\nx = 1\n\ndef f():\n    """Doc."""\n    return x\n'
        assert python_logical_lines(source) == 3  # x=1, def, return

    def test_strategy_loc_positive_and_stable(self):
        lines = strategy_loc()
        assert 100 < lines < 600
        assert strategy_loc() == lines

    def test_weave_benchmark_full_report(self, two_mm):
        report, weaver = weave_benchmark(two_mm, standard_levels())
        assert report.benchmark == "2mm"
        assert report.attributes > 50
        assert report.actions > 20
        assert report.weaved_loc > 3 * report.original_loc
        assert report.delta_loc == report.weaved_loc - report.original_loc
        assert report.bloat == pytest.approx(
            report.delta_loc / report.strategy_lines
        )

    def test_weaved_polybench_reparses(self, two_mm):
        _, weaver = weave_benchmark(two_mm, standard_levels())
        printed = to_source(weaver.unit)
        assert to_source(parse(printed)) == printed

    def test_default_versions_cross_product(self):
        versions = default_versions(standard_levels())
        assert len(versions) == 8
        assert len({v.suffix for v in versions}) == 8

    def test_loop_heavy_kernels_check_more_attributes(self):
        """The paper: attribute counts track the number of loops."""
        report_3mm, _ = weave_benchmark(load("3mm"), standard_levels())
        report_mvt, _ = weave_benchmark(load("mvt"), standard_levels())
        assert report_3mm.attributes > report_mvt.attributes
