"""Tests for the SOCRATES toolflow and the adaptive application."""

import pytest

from repro.core.adaptive import AdaptiveApplication, KernelVersion
from repro.core.scenario import Phase, Scenario
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import (
    Constraint,
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)


def perf_state(name="performance"):
    return OptimizationState(name=name, rank=maximize_throughput())


def eff_state(name="efficiency"):
    return OptimizationState(name=name, rank=maximize_throughput_per_watt_squared())


@pytest.fixture
def adaptive(built_2mm):
    """A fresh adaptive app sharing the session-scoped knowledge."""
    from repro.machine.power import RaplMeter

    source = built_2mm.adaptive
    return AdaptiveApplication(
        name="2mm",
        versions=source._versions,
        knowledge=built_2mm.exploration.knowledge,
        executor=source._executor,
        omp=source._omp,
        meter=RaplMeter(source._executor.power_model, seed=3),
    )


class TestToolflowResult:
    def test_cobayn_produced_four_custom_flags(self, built_2mm):
        assert len(built_2mm.custom_flags) == 4
        assert len(set(built_2mm.custom_flags)) == 4

    def test_compiler_space_is_standard_plus_custom(self, built_2mm):
        labels = [config.label for config in built_2mm.compiler_configs]
        assert labels[:4] == ["-Os", "-O1", "-O2", "-O3"]
        assert len(labels) == 8

    def test_weaving_report_attached(self, built_2mm):
        assert built_2mm.weaving_report.benchmark == "2mm"
        assert built_2mm.weaving_report.weaved_loc > built_2mm.weaving_report.original_loc

    def test_knowledge_covers_full_factorial(self, built_2mm, toolflow):
        expected = 8 * len(toolflow._thread_counts) * 2
        assert len(built_2mm.exploration.knowledge) == expected

    def test_adaptive_source_contains_margot_glue(self, built_2mm):
        source = built_2mm.adaptive_source
        assert "margot_init();" in source
        assert "kernel_2mm__wrapper" in source

    def test_adaptive_source_reparses(self, built_2mm):
        from repro.cir import parse, to_source

        printed = built_2mm.adaptive_source
        assert to_source(parse(printed)) == printed

    def test_versions_cover_all_configs_and_bindings(self, built_2mm):
        versions = built_2mm.adaptive._versions
        assert len(versions) == 16
        compilers = {key[0] for key in versions}
        assert len(compilers) == 8


class TestAdaptiveApplication:
    def test_run_once_produces_record(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        record = adaptive.run_once()
        assert record.time_s > 0
        assert record.power_w > 40.0
        assert record.timestamp == pytest.approx(adaptive.now)

    def test_performance_state_uses_many_threads(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        for _ in range(5):
            record = adaptive.run_once()
        assert record.threads >= 16

    def test_efficiency_state_uses_fewer_threads_and_less_power(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        adaptive.add_state(eff_state())
        perf_records = [adaptive.run_once() for _ in range(5)]
        adaptive.switch_state("efficiency")
        eff_records = [adaptive.run_once() for _ in range(5)]
        assert eff_records[-1].power_w < perf_records[-1].power_w - 15.0
        assert eff_records[-1].threads <= perf_records[-1].threads

    def test_power_budget_state(self, adaptive):
        state = OptimizationState(name="capped", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 80.0))
        )
        adaptive.add_state(state, activate=True)
        records = [adaptive.run_once() for _ in range(8)]
        # after feedback settles, measured power must respect the budget
        assert sum(r.power_w for r in records[3:]) / len(records[3:]) < 84.0

    def test_trace_accumulates(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        adaptive.run_once()
        adaptive.run_once()
        assert len(adaptive.trace) == 2

    def test_run_for_advances_clock(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        records = adaptive.run_for(0.5)
        assert adaptive.now >= 0.5
        assert records

    def test_clock_monotone(self, adaptive):
        adaptive.add_state(perf_state(), activate=True)
        stamps = [adaptive.run_once().timestamp for _ in range(4)]
        assert stamps == sorted(stamps)

    def test_dispatch_unknown_version_raises(self, built_2mm, adaptive):
        from repro.margot.knowledge import MetricStats, OperatingPoint

        bogus = OperatingPoint(
            knobs={"compiler": "-O9", "threads": 2, "binding": "close"},
            metrics={"time": MetricStats(1.0)},
        )
        with pytest.raises(KeyError):
            adaptive._dispatch(bogus)


class TestScenario:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Scenario(phases=[], duration_s=10.0)
        with pytest.raises(ValueError):
            Scenario(phases=[Phase(5.0, "a")], duration_s=10.0)
        with pytest.raises(ValueError):
            Scenario(phases=[Phase(0.0, "a"), Phase(0.0, "b")], duration_s=10.0)
        with pytest.raises(ValueError):
            Scenario(phases=[Phase(0.0, "a")], duration_s=0.0)

    def test_state_at(self):
        scenario = Scenario(
            phases=[Phase(0.0, "a"), Phase(10.0, "b"), Phase(20.0, "a")],
            duration_s=30.0,
        )
        assert scenario.state_at(0.0) == "a"
        assert scenario.state_at(9.99) == "a"
        assert scenario.state_at(10.0) == "b"
        assert scenario.state_at(25.0) == "a"

    def test_scenario_switches_states(self, adaptive):
        adaptive.add_state(eff_state(), activate=True)
        adaptive.add_state(perf_state())
        scenario = Scenario(
            phases=[Phase(0.0, "efficiency"), Phase(2.0, "performance")],
            duration_s=4.0,
        )
        records = scenario.run(adaptive)
        states = {record.state for record in records}
        assert states == {"efficiency", "performance"}
        # the trailing records must be in the performance phase
        assert records[-1].state == "performance"
