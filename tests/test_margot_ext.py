"""Tests for the mARGOt extensions: configuration documents, oplist
serialization, and margot.h code generation."""

import json

import pytest

from repro.cir import parse, to_source
from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.codegen import generate_margot_header
from repro.margot.config import (
    ConfigError,
    MargotConfiguration,
    apply_configuration,
    load_config,
)
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.margot.oplist import (
    OplistError,
    knowledge_from_dict,
    knowledge_to_dict,
    load_knowledge,
    save_knowledge,
)
from repro.margot.state import RankComposition, RankDirection


def sample_kb():
    points = []
    for threads, time, power in ((1, 4.0, 45.0), (8, 0.8, 90.0), (16, 0.5, 120.0)):
        points.append(
            OperatingPoint(
                knobs={"compiler": "-O2", "threads": threads, "binding": "close"},
                metrics={
                    "time": MetricStats(time, 0.01),
                    "power": MetricStats(power, 1.0),
                    "throughput": MetricStats(1.0 / time, 0.0),
                },
            )
        )
    return KnowledgeBase(points)


BASIC_CONFIG = {
    "kernel": "2mm",
    "states": [
        {
            "name": "efficiency",
            "rank": {
                "direction": "maximize",
                "composition": "geometric",
                "fields": [
                    {"metric": "throughput", "coefficient": 1.0},
                    {"metric": "power", "coefficient": -2.0},
                ],
            },
        },
        {
            "name": "budget",
            "rank": {
                "direction": "minimize",
                "fields": [{"metric": "time"}],
            },
            "constraints": [
                {
                    "metric": "power",
                    "comparison": "le",
                    "value": 100.0,
                    "confidence": 1.0,
                    "priority": 5,
                }
            ],
        },
    ],
    "active_state": "efficiency",
}


class TestConfig:
    def test_load_from_mapping(self):
        config = load_config(BASIC_CONFIG)
        assert config.kernel == "2mm"
        assert config.state_names() == ["efficiency", "budget"]
        assert config.active_state == "efficiency"

    def test_load_from_json_string(self):
        config = load_config(json.dumps(BASIC_CONFIG))
        assert config.kernel == "2mm"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "margot.json"
        path.write_text(json.dumps(BASIC_CONFIG))
        config = load_config(path)
        assert config.state_names() == ["efficiency", "budget"]

    def test_rank_parsed(self):
        config = load_config(BASIC_CONFIG)
        rank = config.states[0].rank
        assert rank.direction is RankDirection.MAXIMIZE
        assert rank.composition is RankComposition.GEOMETRIC
        assert [f.coefficient for f in rank.fields] == [1.0, -2.0]

    def test_constraint_parsed(self):
        config = load_config(BASIC_CONFIG)
        constraint = config.states[1].constraints[0]
        assert constraint.goal.field == "power"
        assert constraint.goal.value == 100.0
        assert constraint.priority == 5
        assert constraint.confidence == 1.0

    def test_symbolic_comparisons_accepted(self):
        doc = json.loads(json.dumps(BASIC_CONFIG))
        doc["states"][1]["constraints"][0]["comparison"] = "<="
        config = load_config(doc)
        assert config.states[1].constraints[0].goal.check(99.0)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("kernel"),
            lambda d: d.pop("states"),
            lambda d: d.update(states=[]),
            lambda d: d["states"][0].pop("name"),
            lambda d: d["states"][0]["rank"].pop("fields"),
            lambda d: d["states"][0]["rank"].update(direction="sideways"),
            lambda d: d.update(active_state="nope"),
            lambda d: d["states"][1]["constraints"][0].update(comparison="~~"),
        ],
    )
    def test_malformed_documents_rejected(self, mutate):
        document = json.loads(json.dumps(BASIC_CONFIG))
        mutate(document)
        with pytest.raises(ConfigError):
            load_config(document)

    def test_duplicate_state_names_rejected(self):
        document = json.loads(json.dumps(BASIC_CONFIG))
        document["states"][1]["name"] = "efficiency"
        with pytest.raises(ConfigError):
            load_config(document)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            load_config("{not json")

    def test_apply_to_asrtm(self):
        config = load_config(BASIC_CONFIG)
        asrtm = ApplicationRuntimeManager(sample_kb())
        apply_configuration(config, asrtm)
        assert asrtm.active_state.name == "efficiency"
        asrtm.switch_state("budget")
        best = asrtm.update()
        assert best.metric("power").mean <= 100.0


class TestOplist:
    def test_round_trip_dict(self):
        kb = sample_kb()
        rebuilt = knowledge_from_dict(knowledge_to_dict(kb))
        assert len(rebuilt) == len(kb)
        original = kb.find(compiler="-O2", threads=8, binding="close")
        loaded = rebuilt.find(compiler="-O2", threads=8, binding="close")
        assert loaded.metric("time").mean == original.metric("time").mean
        assert loaded.metric("power").std == original.metric("power").std

    def test_knob_types_preserved(self):
        rebuilt = knowledge_from_dict(knowledge_to_dict(sample_kb()))
        point = rebuilt.points()[0]
        assert isinstance(point.knob("threads"), int)
        assert isinstance(point.knob("compiler"), str)

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "kb.oplist.json"
        save_knowledge(sample_kb(), path)
        rebuilt = load_knowledge(path)
        assert len(rebuilt) == 3

    def test_bad_format_version(self):
        with pytest.raises(OplistError):
            knowledge_from_dict({"format": 999, "points": []})

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(OplistError):
            load_knowledge(path)

    def test_unknown_knob_type(self):
        document = {
            "format": 1,
            "points": [
                {
                    "knobs": {"x": {"type": "blob", "value": 1}},
                    "metrics": {"time": {"mean": 1.0, "std": 0.0}},
                }
            ],
        }
        with pytest.raises(OplistError):
            knowledge_from_dict(document)


class TestCodegen:
    def _states(self):
        config = load_config(BASIC_CONFIG)
        return config.states

    def test_header_contains_tables_and_api(self):
        header = generate_margot_header(
            "kernel_2mm",
            sample_kb(),
            self._states(),
            version_index={"-O2|close": 3},
        )
        assert "margot_op_version" in header
        assert "margot_op_time_mean" in header
        assert "void margot_init(void)" in header
        assert "void margot_update(int *version, int *threads)" in header
        assert "MARGOT_OP_COUNT 3" in header

    def test_version_index_used(self):
        header = generate_margot_header(
            "kernel_2mm", sample_kb(), self._states(), {"-O2|close": 7}
        )
        assert "static int margot_op_version[] = {7, 7, 7};" in header

    def test_header_parses_with_cir(self):
        header = generate_margot_header(
            "kernel_2mm", sample_kb(), self._states(), {"-O2|close": 0}
        )
        unit = parse(header, name="margot.h")
        assert unit.has_function("margot_init")
        assert unit.has_function("margot_update")
        assert unit.has_function("margot_start_monitor")
        assert unit.has_function("margot_stop_monitor")
        assert unit.has_function("margot_log")

    def test_header_round_trips(self):
        header = generate_margot_header(
            "kernel_2mm", sample_kb(), self._states(), {"-O2|close": 0}
        )
        printed = to_source(parse(header))
        assert to_source(parse(printed)) == printed

    def test_constraints_emitted(self):
        header = generate_margot_header(
            "kernel_2mm", sample_kb(), self._states(), {"-O2|close": 0}
        )
        assert "margot_op_power_mean[op]" in header
        assert "<= 100" in header

    def test_geometric_rank_uses_log(self):
        header = generate_margot_header(
            "kernel_2mm", sample_kb(), self._states(), {"-O2|close": 0}
        )
        assert "log(margot_op_throughput_mean[op])" in header
        assert "-2 * log(margot_op_power_mean[op])" in header

    def test_requires_states(self):
        with pytest.raises(ValueError):
            generate_margot_header("k", sample_kb(), [], {})
