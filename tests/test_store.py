"""Tests for the telemetry warehouse: store, provenance, trend, CLI."""

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.provenance import ProvenanceGraph
from repro.obs.store import (
    ArtifactBlob,
    SlowdownTracer,
    TelemetryStore,
    VirtualClock,
    canonical_json,
    filter_runs,
    parse_query,
    parse_slowdowns,
    recording_observability,
    run_id_for,
    validate_run_record,
)

FAST = ["--threads", "1,4,16", "--repetitions", "2"]


def tree_digest(root: Path) -> str:
    """One hash over every file path + content under ``root``."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file():
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


class TestVirtualClock:
    def test_returns_then_advances(self):
        clock = VirtualClock(tick_s=0.5)
        assert clock() == 0.0
        assert clock() == 0.5
        clock.advance(2.0)
        assert clock() == 3.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            VirtualClock(tick_s=0.0)
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestSlowdownTracer:
    def test_stretches_named_span_by_factor(self):
        clock = VirtualClock(tick_s=1e-6)
        tracer = SlowdownTracer(clock, {"slow": 3.0})
        with tracer.span("slow"):
            clock.advance(1.0)
        with tracer.span("fast"):
            clock.advance(1.0)
        spans = {span.name: span for span in tracer.spans}
        assert spans["slow"].duration_s == pytest.approx(3.0, rel=1e-4)
        assert spans["fast"].duration_s == pytest.approx(1.0, rel=1e-4)

    def test_parse_slowdowns(self):
        assert parse_slowdowns(None) == {}
        assert parse_slowdowns(["stage:profile:1.5"]) == {"stage:profile": 1.5}
        with pytest.raises(ValueError):
            parse_slowdowns(["nocolon"])
        with pytest.raises(ValueError):
            parse_slowdowns(["span:0.5"])  # factor < 1 would rewrite history

    def test_recording_observability_is_deterministic(self):
        def spans_of():
            obs = recording_observability()
            with obs.tracer.span("a"):
                with obs.tracer.span("b"):
                    pass
            return [(s.name, s.start_s, s.duration_s) for s in obs.tracer.spans]

        assert spans_of() == spans_of()


class TestRunIdentity:
    def test_run_id_is_stable_and_order_independent(self):
        a = {"kind": "build", "app": "2mm", "seed": 7}
        b = {"seed": 7, "app": "2mm", "kind": "build"}
        assert run_id_for(a) == run_id_for(b)
        assert len(run_id_for(a)) == 16

    def test_run_id_changes_with_any_field(self):
        base = {"kind": "build", "app": "2mm", "seed": 7}
        assert run_id_for(base) != run_id_for({**base, "seed": 8})
        assert run_id_for(base) != run_id_for({**base, "app": "mvt"})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestTelemetryStore:
    def test_put_blob_dedups_by_content(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        sha1, created1 = store.put_blob(b"payload", ".json")
        sha2, created2 = store.put_blob(b"payload", ".json")
        assert sha1 == sha2 and created1 and not created2
        assert len(store.blobs()) == 1
        assert store.find_blob(sha1, ".json").read_bytes() == b"payload"
        assert store.find_blob(sha1).name.endswith(".json")

    def test_record_is_idempotent(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        blob = ArtifactBlob("bench.json", b'{"x": 1}')
        run_id, created = store.record("bench", scenario="s", artifacts=[blob])
        before = tree_digest(store.root)
        run_id2, created2 = store.record("bench", scenario="s", artifacts=[blob])
        assert run_id == run_id2 and created and not created2
        assert tree_digest(store.root) == before

    def test_record_and_load_round_trip(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        run_id, _ = store.record(
            "build",
            app="2mm",
            machine="xeon_2s",
            seed=5,
            source="ab" * 32,
            metrics={"wall_s": 1.5},
            artifacts=[ArtifactBlob("trace.json", b"{}")],
        )
        record = store.load_run(run_id)
        assert record["app"] == "2mm"
        assert record["metrics"]["wall_s"] == 1.5
        summary = validate_run_record(record)
        assert summary["run_id"] == run_id
        assert store.resolve_run(run_id[:6]) == run_id

    def test_resolve_run_rejects_ambiguity_and_misses(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        store.record("build", app="a")
        with pytest.raises(ValueError):
            store.resolve_run("zzzz")

    def test_corrupted_record_fails_validation(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        run_id, _ = store.record("build", app="2mm")
        path = store.runs_dir / f"{run_id}.json"
        record = json.loads(path.read_text())
        record["seed"] = 999  # identity no longer hashes to run_id
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="does not match the recomputed"):
            store.load_run(run_id)

    def test_verify_detects_missing_blob(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        store.record("bench", scenario="s", artifacts=[ArtifactBlob("a.json", b"{}")])
        for blob in store.blobs():
            blob.unlink()
        with pytest.raises(ValueError, match="missing"):
            store.verify()

    def test_gc_never_deletes_pinned_reachable(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        keep_blob = ArtifactBlob("keep.json", b'{"keep": 1}')
        drop_blob = ArtifactBlob("drop.json", b'{"drop": 1}')
        pinned_id, _ = store.record("bench", scenario="s", label="old", artifacts=[keep_blob])
        store.record("bench", scenario="s", label="mid", artifacts=[drop_blob])
        store.record("bench", scenario="s", label="new", artifacts=[keep_blob])
        store.pin(pinned_id)
        summary = store.gc(keep=1)
        assert summary["verified"] is True
        assert pinned_id not in summary["removed_runs"]
        assert store.find_blob(
            hashlib.sha256(keep_blob.data).hexdigest(), ".json"
        ) is not None
        # the mid run was unpinned and beyond keep=1, its blob orphaned
        assert store.find_blob(
            hashlib.sha256(drop_blob.data).hexdigest(), ".json"
        ) is None


class TestGcProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        runs=st.lists(
            st.tuples(
                st.sampled_from(["alpha", "beta", "gamma", "delta"]),  # payload
                st.booleans(),  # pinned?
            ),
            min_size=1,
            max_size=8,
        ),
        keep=st.integers(min_value=0, max_value=8),
    )
    def test_gc_idempotent_and_preserves_pinned(self, tmp_path_factory, runs, keep):
        store = TelemetryStore(tmp_path_factory.mktemp("wh") / "store")
        pinned_ids = []
        for index, (payload, pin) in enumerate(runs):
            blob = ArtifactBlob("data.json", json.dumps({"p": payload}).encode())
            run_id, _ = store.record(
                "bench", scenario="s", label=f"r{index}", artifacts=[blob]
            )
            if pin:
                store.pin(run_id)
                pinned_ids.append(run_id)
        summary = store.gc(keep=keep)
        assert summary["verified"] is True
        survivors = set(store.run_ids())
        # hard invariant: pinned runs and everything they reach survive
        for run_id in pinned_ids:
            assert run_id in survivors
            record = store.load_run(run_id)
            for entry in record["artifacts"]:
                assert store.find_blob(entry["sha256"], entry["suffix"]) is not None
        # idempotence: a second sweep with the same policy is a no-op
        before = tree_digest(store.root)
        second = store.gc(keep=keep)
        assert tree_digest(store.root) == before
        assert second["removed_runs"] == [] and second["removed_blobs"] == 0

    @settings(max_examples=25, deadline=None)
    @given(payloads=st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=6))
    def test_double_record_is_byte_identical(self, tmp_path_factory, payloads):
        root = tmp_path_factory.mktemp("wh") / "store"
        store = TelemetryStore(root)
        blobs = [
            ArtifactBlob(f"a{index}.txt", data)
            for index, data in enumerate(payloads)
        ]
        first = store.record("bench", scenario="s", artifacts=blobs)
        digest = tree_digest(root)
        second = store.record("bench", scenario="s", artifacts=blobs)
        assert first[0] == second[0] and not second[1]
        assert tree_digest(root) == digest


class TestQueryGrammar:
    RECORDS = [
        {"kind": "bench", "scenario": "s", "seed": 0, "label": "a",
         "run_id": "x1", "metrics": {"wall_s": 1.0}},
        {"kind": "bench", "scenario": "s", "seed": 0, "label": "b",
         "run_id": "x2", "metrics": {"wall_s": 3.0}},
        {"kind": "build", "app": "2mm", "seed": 7, "label": "",
         "run_id": "y1", "metrics": {"wall_s": 2.0}},
    ]

    def test_filter_by_field_and_metric(self):
        clauses = parse_query("kind=bench and wall_s<2.5")
        assert [r["run_id"] for r in filter_runs(self.RECORDS, clauses)] == ["x1"]

    def test_numeric_and_inequality_operators(self):
        assert len(filter_runs(self.RECORDS, parse_query("seed!=0"))) == 1
        assert len(filter_runs(self.RECORDS, parse_query("wall_s>=2.0"))) == 2

    def test_bad_clause_raises(self):
        with pytest.raises(ValueError):
            parse_query("kind~bench")


class TestProvenanceGraph:
    def make_store(self, tmp_path):
        store = TelemetryStore(tmp_path / "wh")
        trace = ArtifactBlob("trace.json", b'{"traceEvents": []}')
        folded = ArtifactBlob("profile.folded", b"a;b 1.0\n")
        run_id, _ = store.record(
            "build",
            app="2mm",
            source="cd" * 32,
            artifacts=[trace, folded],
            derivations=[("trace.json", "profile.folded", "collapsed")],
        )
        return store, run_id, trace

    def test_lineage_both_directions(self, tmp_path):
        store, run_id, trace = self.make_store(tmp_path)
        graph = ProvenanceGraph.from_runs(store.runs())
        node = graph.resolve(f"run:{run_id}")
        lineage = graph.lineage_dict(node)
        assert any(e["relation"] == "input" for e in lineage["ancestors"])
        relations = {e["relation"] for e in lineage["descendants"]}
        assert relations == {"produced", "collapsed"}
        # artifact ancestry walks back through the run to the source
        sha = hashlib.sha256(trace.data).hexdigest()
        up = graph.lineage_dict(graph.resolve(sha[:12]))["ancestors"]
        assert any(e["src"].startswith("source:") for e in up)

    def test_resolve_rejects_ambiguous_and_unknown(self, tmp_path):
        store, run_id, _ = self.make_store(tmp_path)
        graph = ProvenanceGraph.from_runs(store.runs())
        with pytest.raises(ValueError, match="no provenance node"):
            graph.resolve("zz" * 40)

    def test_ascii_tree_renders_run(self, tmp_path):
        store, run_id, _ = self.make_store(tmp_path)
        graph = ProvenanceGraph.from_runs(store.runs())
        tree = graph.ascii_tree(f"run:{run_id}")
        assert "[produced]" in tree and "[collapsed]" in tree
        assert "profile.folded" in tree


class TestWarehouseCli:
    def record_bench(self, store, label, extra=()):
        argv = [
            "obs", "runs", "record", "bench", "single_build",
            "--store", str(store), "--repeats", "1", "--label", label, "--json",
        ] + list(extra)
        assert main(argv) == 0

    def test_cli_double_record_byte_identical(self, tmp_path, capsys):
        store = tmp_path / "wh"
        self.record_bench(store, "r1")
        first = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        digest = tree_digest(store)
        self.record_bench(store, "r1")
        second = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert first["run_id"] == second["run_id"]
        assert first["created"] and not second["created"]
        assert tree_digest(store) == digest

    def test_trend_clean_history_then_injected_drift(self, tmp_path, capsys):
        store = tmp_path / "wh"
        for label in ("r1", "r2", "r3", "r4", "r5"):
            self.record_bench(store, label)
        capsys.readouterr()
        # five identical seeded runs: nothing flagged
        assert main(["obs", "trend", "single_build", "--store", str(store)]) == 0
        assert "ok" in capsys.readouterr().out
        # inject a >=20% slowdown into the sixth run: drift, exit 3,
        # with the stretched stack named in the attribution
        self.record_bench(store, "r6", ["--inject-slowdown", "engine.evaluate:2.0"])
        capsys.readouterr()
        code = main(
            ["obs", "trend", "single_build", "--store", str(store), "--json"]
        )
        assert code == 3
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["drift"] is True
        assert verdict["latest"] > 1.2 * verdict["median"]
        assert any(
            "engine.evaluate" in offender["stack"]
            for offender in verdict["offenders"]
        )

    def test_trend_needs_history(self, tmp_path, capsys):
        store = tmp_path / "wh"
        self.record_bench(store, "only")
        assert main(["obs", "trend", "single_build", "--store", str(store)]) == 2
        assert "needs at least" in capsys.readouterr().err

    def test_runs_list_query_lineage_round_trip(self, tmp_path, capsys):
        store = tmp_path / "wh"
        self.record_bench(store, "r1")
        record = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert main(["obs", "runs", "list", "--store", str(store), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["run_id"] for row in rows] == [record["run_id"]]
        assert main([
            "obs", "query", "kind=bench and scenario=single_build",
            "--store", str(store), "--agg", "count", "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["value"] == 1
        assert main([
            "obs", "lineage", f"run:{record['run_id']}",
            "--store", str(store), "--json",
        ]) == 0
        lineage = json.loads(capsys.readouterr().out)
        produced = [
            edge for edge in lineage["descendants"] if edge["relation"] == "produced"
        ]
        assert len(produced) == 3  # bench.json, trace.json, profile.folded

    def test_gc_pin_and_validate_store(self, tmp_path, capsys):
        store = tmp_path / "wh"
        for label in ("r1", "r2", "r3"):
            self.record_bench(store, label)
        outputs = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        pinned = outputs[0]["run_id"]
        assert main(["obs", "runs", "pin", pinned, "--store", str(store)]) == 0
        capsys.readouterr()
        assert main([
            "obs", "runs", "gc", "--store", str(store), "--keep", "1", "--json",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True
        assert pinned not in summary["removed_runs"]
        # the whole store still validates as a directory tree
        assert main(["obs", "validate", str(store)]) == 0
        out = capsys.readouterr().out
        assert "validated" in out and "FAIL" not in out

    def test_show_and_unpin(self, tmp_path, capsys):
        store = tmp_path / "wh"
        self.record_bench(store, "r1")
        record = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        prefix = record["run_id"][:8]
        assert main(["obs", "runs", "show", prefix, "--store", str(store)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == record["run_id"]
        assert shown["schema"] == "socrates-run/1"
        assert main(["obs", "runs", "unpin", prefix, "--store", str(store)]) == 0


class TestStoreThreading:
    def test_build_store_flag_records_run(self, tmp_path, capsys):
        store = tmp_path / "wh"
        code = main(
            ["build", "mvt", "--store", str(store), "--store-label", "x"] + FAST
        )
        assert code == 0
        telemetry = TelemetryStore(store)
        ids = telemetry.run_ids()
        assert len(ids) == 1
        record = telemetry.load_run(ids[0])
        assert record["kind"] == "build" and record["app"] == "mvt"
        assert record["label"] == "x"
        assert record["metrics"]["knowledge_points"] > 0
        names = {entry["name"] for entry in record["artifacts"]}
        assert {"trace.json", "metrics.prom", "profile.folded"} <= names
        assert telemetry.verify()["runs"] == 1


class TestValidateDirectory:
    def test_directory_with_bad_artifact_exits_2(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        good.write_text("# TYPE x counter\nx 1.0\n")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        skipped = tmp_path / "notes.md"
        skipped.write_text("not an artifact")
        assert main(["obs", "validate", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert f"{bad}: FAIL" in out

    def test_directory_all_good_summarizes(self, tmp_path, capsys):
        (tmp_path / "m.prom").write_text("# TYPE x counter\nx 1.0\n")
        (tmp_path / "p.folded").write_text("a;b 1.0\n")
        (tmp_path / "notes.md").write_text("skip me")
        assert main(["obs", "validate", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "validated 2 file(s), skipped 1" in out

    def test_empty_directory_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs", "validate", str(empty)]) == 2
