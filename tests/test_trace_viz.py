"""Tests for trace export/summaries and the ASCII visualizations."""

import numpy as np
import pytest

from repro.core.adaptive import InvocationRecord
from repro.core.scenario import Phase, Scenario
from repro.core.trace import (
    summarize_phases,
    trace_from_csv,
    trace_to_csv,
)
from repro.viz.ascii import boxplot, histogram, timeseries


def make_record(timestamp, state="s", threads=8, power=90.0, time_s=0.1):
    return InvocationRecord(
        timestamp=timestamp,
        state=state,
        compiler="-O2",
        threads=threads,
        binding="close",
        time_s=time_s,
        power_w=power,
        energy_j=time_s * power,
    )


@pytest.fixture
def trace():
    records = []
    for step in range(10):
        records.append(make_record(step * 0.1, state="a", threads=4, power=70.0))
    for step in range(10):
        records.append(make_record(1.0 + step * 0.1, state="b", threads=16, power=120.0))
    return records


class TestTraceCsv:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        loaded = trace_from_csv(path)
        assert len(loaded) == len(trace)
        assert loaded[0].state == "a"
        assert loaded[-1].threads == 16
        assert loaded[3].time_s == pytest.approx(trace[3].time_s)
        assert loaded[3].power_w == pytest.approx(trace[3].power_w)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,state\n0.0,a\n")
        with pytest.raises(ValueError):
            trace_from_csv(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        trace_to_csv([], path)
        assert trace_from_csv(path) == []

    def test_truncated_row_names_row_and_column(self, trace, tmp_path):
        path = tmp_path / "truncated.csv"
        trace_to_csv(trace[:3], path)
        lines = path.read_text().splitlines()
        # drop the trailing columns of the second data row
        lines[2] = ",".join(lines[2].split(",")[:4])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"trace row 2 is truncated.*'binding'"):
            trace_from_csv(path)

    def test_bad_numeric_cell_names_row_column_and_value(self, trace, tmp_path):
        path = tmp_path / "garbled.csv"
        trace_to_csv(trace[:3], path)
        lines = path.read_text().splitlines()
        cells = lines[3].split(",")
        cells[3] = "many"  # the 'threads' column of data row 3
        lines[3] = ",".join(cells)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            ValueError, match=r"trace row 3, column 'threads'.*'many' as int"
        ):
            trace_from_csv(path)

    def test_load_trace_alias(self, trace, tmp_path):
        from repro.core.trace import load_trace

        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        assert load_trace(path) == trace_from_csv(path)


class TestPhaseSummary:
    def test_summaries_split_by_phase(self, trace):
        scenario = Scenario(
            phases=[Phase(0.0, "a"), Phase(1.0, "b")], duration_s=2.0
        )
        summaries = summarize_phases(trace, scenario)
        assert [s.state for s in summaries] == ["a", "b"]
        assert summaries[0].invocations == 10
        assert summaries[0].mean_power_w == pytest.approx(70.0)
        assert summaries[1].dominant_threads == 16

    def test_total_energy(self, trace):
        scenario = Scenario(
            phases=[Phase(0.0, "a"), Phase(1.0, "b")], duration_s=2.0
        )
        summaries = summarize_phases(trace, scenario)
        assert summaries[0].total_energy_j == pytest.approx(10 * 0.1 * 70.0)

    def test_throughput_property(self, trace):
        scenario = Scenario(phases=[Phase(0.0, "a")], duration_s=2.0)
        (summary,) = summarize_phases(trace[:10], scenario)
        assert summary.mean_throughput == pytest.approx(10.0)

    def test_empty_phase_skipped(self, trace):
        scenario = Scenario(
            phases=[Phase(0.0, "a"), Phase(1.0, "b"), Phase(1.9, "c")],
            duration_s=5.0,
        )
        summaries = summarize_phases(trace, scenario)
        # phase c covers 1.9..5.0 and holds the last record only
        assert summaries[-1].state == "c"


class TestAsciiViz:
    def test_boxplot_structure(self):
        rng = np.random.default_rng(0)
        art = boxplot(
            [("alpha", rng.normal(1.0, 0.1, 50)), ("beta", rng.normal(2.0, 0.3, 50))],
            width=50,
        )
        lines = art.splitlines()
        assert len(lines) == 3  # two rows + axis
        assert lines[0].startswith("alpha")
        assert "#" in lines[0] and "#" in lines[1]
        assert "[" in lines[1] or "=" in lines[1]

    def test_boxplot_median_between_whiskers(self):
        art = boxplot([("x", [0.0, 1.0, 2.0, 3.0, 10.0])], width=40)
        row = art.splitlines()[0]
        assert row.index("|") < row.index("#") < row.rindex("|")

    def test_boxplot_empty(self):
        assert boxplot([]) == ""

    def test_boxplot_constant_series(self):
        art = boxplot([("const", [5.0, 5.0, 5.0])], width=30, bounds=(0.0, 10.0))
        assert "#" in art

    def test_timeseries_contains_marks_and_axis(self):
        times = np.linspace(0, 100, 200)
        values = 100 + 40 * (times > 50)
        art = timeseries(times, values, height=8, width=60, title="Power")
        lines = art.splitlines()
        assert lines[0] == "Power"
        assert any("*" in line for line in lines)
        assert "140.0" in art and "100.0" in art

    def test_timeseries_step_shape(self):
        times = np.linspace(0, 10, 100)
        values = np.where(times < 5, 0.0, 1.0)
        art = timeseries(times, values, height=4, width=40)
        rows = [line for line in art.splitlines() if "|" in line]
        top = rows[0]
        bottom = rows[-1]
        # low phase marks on the left of the bottom row, high phase on
        # the right of the top row
        assert "*" in bottom[: len(bottom) // 2]
        assert "*" in top[len(top) // 2 :]

    def test_timeseries_empty(self):
        assert timeseries([], [], title="t") == "t"

    def test_histogram_counts(self):
        art = histogram([1.0] * 10 + [2.0] * 5, bins=2, width=20)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("10")
        assert lines[1].endswith("5")

    def test_histogram_empty(self):
        assert histogram([], title="h") == "h"


class TestBoxplotClamping:
    def test_values_outside_bounds_clamp_to_edges(self):
        art = boxplot([("x", [0.5, 1.0, 5.0])], width=30, bounds=(0.0, 2.5))
        assert art  # no IndexError; whisker sits on the right edge
        row = art.splitlines()[0]
        assert row.rstrip()[-1] == "|"
