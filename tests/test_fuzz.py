"""Fuzzing the frontend: arbitrary input must fail *predictably*.

The lexer/parser are the entry point for user-supplied sources (CLI
``weave``/``build``), so malformed input must raise ``LexError`` or
``ParseError`` — never an arbitrary internal exception or a hang.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cir import ParseError, parse, to_source
from repro.cir.lexer import LexError, tokenize

_PRINTABLE = string.ascii_letters + string.digits + string.punctuation + " \t\n"


class TestLexerFuzz:
    @given(st.text(alphabet=_PRINTABLE, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_lexer_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind.name == "EOF"

    @given(st.text(alphabet=_PRINTABLE, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            parse(text)
        except (LexError, ParseError):
            pass

    @given(st.lists(st.sampled_from([
        "int", "double", "void", "x", "y", "f", "(", ")", "{", "}", ";",
        "=", "+", "*", "[", "]", "1", "2.5", "for", "if", "return", ",",
    ]), max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_token_soup(self, tokens):
        """Structurally plausible token sequences parse or ParseError."""
        try:
            parse(" ".join(tokens))
        except ParseError:
            pass


class TestRoundTripFuzzOnValidPrograms:
    @given(
        st.lists(
            st.sampled_from(
                [
                    "x = x + 1;",
                    "if (x > 0) { y = x; } else y = -x;",
                    "for (i = 0; i < 10; i++) s += i;",
                    "while (x < 100) x = x * 2;",
                    "do x--; while (x > 0);",
                    "{ int t = 3; x = t; }",
                    "return;",
                ]
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_composed_programs_round_trip(self, statements):
        body = "\n".join(statements)
        source = f"void f(int x, int y, int i, int s) {{ {body} }}"
        printed = to_source(parse(source))
        assert to_source(parse(printed)) == printed


class TestConstFoldInterpreterAgreement:
    """eval_const (the static analyzer) and the interpreter must agree
    on every constant integer expression both can handle."""

    @given(
        st.recursive(
            st.integers(min_value=0, max_value=50).map(str),
            lambda sub: st.one_of(
                st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
                    lambda t: f"({t[0]} {t[1]} {t[2]})"
                ),
                st.tuples(sub, st.sampled_from(["/", "%"]), st.integers(min_value=1, max_value=9).map(str)).map(
                    lambda t: f"({t[0]} {t[1]} {t[2]})"
                ),
                sub.map(lambda e: f"(-{e})"),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_agreement(self, text):
        from repro.cir import eval_const
        from repro.cir.interp import Interpreter

        unit = parse(f"int run(void) {{ return {text}; }}")
        expr = unit.function("run").body.stmts[0].value
        folded = eval_const(expr)
        if folded is None:
            return  # outside eval_const's domain (e.g. negative divisor)
        interpreted = Interpreter(unit).call("run")
        # both implement C truncating division/modulo, so they agree on
        # every expression eval_const can fold
        assert folded == interpreted


class TestInterpreterDeterminism:
    @given(
        st.lists(
            st.sampled_from(
                [
                    "x = x * 3 + 1;",
                    "if (x % 2 == 0) x = x / 2;",
                    "for (i = 0; i < 5; i++) x += i;",
                    "x = x > 100 ? x - 100 : x;",
                ]
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_same_program_same_result(self, statements, seed):
        from repro.cir.interp import Interpreter

        body = "\n".join(statements)
        source = f"int run(int x) {{ int i; {body} return x; }}"
        unit = parse(source)
        first = Interpreter(unit).call("run", seed)
        second = Interpreter(unit).call("run", seed)
        assert first == second
