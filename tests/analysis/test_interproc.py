"""Tests for call-graph construction and bottom-up function summaries."""

from repro.analysis.interproc import (
    build_call_graph,
    summarize_unit,
)
from repro.cir import parse

_TWO_LEVEL = """
double A[100];
void leaf(void) {
  int i;
  for (i = 0; i < 100; i++)
    A[i] = A[i] + 1.0;
}
void driver(void) {
  int t;
  for (t = 0; t < 10; t++)
    leaf();
}
"""


class TestCallGraph:
    def test_edges_and_callers(self):
        graph = build_call_graph(parse(_TWO_LEVEL))
        assert graph.nodes == ("leaf", "driver")
        assert graph.callees("driver") == ("leaf",)
        assert graph.callees("leaf") == ()
        assert graph.callers("leaf") == ("driver",)

    def test_external_callees_are_separated(self):
        unit = parse(
            """
            double y;
            void k(double x) { y = sqrt(x); }
            """
        )
        graph = build_call_graph(unit)
        assert graph.callees("k") == ()
        assert graph.external_callees("k") == ("sqrt",)

    def test_bottom_up_orders_callees_first(self):
        graph = build_call_graph(parse(_TWO_LEVEL))
        order = graph.bottom_up()
        assert order.index("leaf") < order.index("driver")

    def test_recursion_is_detected(self):
        unit = parse(
            """
            int f(int n) { return f(n - 1); }
            int g(int n) { return h(n); }
            int h(int n) { return g(n); }
            int pure(int n) { return n; }
            """
        )
        graph = build_call_graph(unit)
        assert graph.recursive_functions() == frozenset({"f", "g", "h"})
        # cycle members still appear in the order, after acyclic ones
        assert set(graph.bottom_up()) == {"f", "g", "h", "pure"}


class TestSummaries:
    def test_trip_weighted_counts(self):
        unit = parse(
            """
            double A[100];
            void k(void) {
              int i;
              for (i = 0; i < 100; i++)
                A[i] = A[i] + 1.0;
            }
            """
        )
        summary = summarize_unit(unit)["k"]
        assert summary.resolved
        # one fp add per iteration; one load (rhs A[i]), one store
        assert summary.flops == 100.0
        assert summary.loads == 100.0
        assert summary.stores == 100.0
        assert summary.max_depth == 1

    def test_callee_summary_expands_at_call_sites(self):
        summaries = summarize_unit(parse(_TWO_LEVEL))
        leaf, driver = summaries["leaf"], summaries["driver"]
        assert leaf.resolved and driver.resolved
        # driver runs leaf 10 times: all leaf work scales by the trip
        assert driver.flops == 10.0 * leaf.flops
        assert driver.loads == 10.0 * leaf.loads
        assert driver.stores == 10.0 * leaf.stores
        assert driver.call_sites == 10.0

    def test_recursive_functions_stay_unresolved(self):
        unit = parse("int f(int n) { return f(n - 1); }")
        summary = summarize_unit(unit)["f"]
        assert summary.recursive and not summary.resolved

    def test_while_loops_are_unresolved(self):
        unit = parse(
            """
            void k(int n) {
              int i;
              i = 0;
              while (i < n)
                i = i + 1;
            }
            """
        )
        assert not summarize_unit(unit)["k"].resolved

    def test_locally_constant_bound_resolves(self):
        unit = parse(
            """
            double A[50];
            void k(void) {
              int i;
              int n;
              n = 50;
              for (i = 0; i < n; i++)
                A[i] = 2.0 * A[i];
            }
            """
        )
        summary = summarize_unit(unit)["k"]
        assert summary.resolved
        assert summary.flops == 50.0

    def test_call_density(self):
        summaries = summarize_unit(parse(_TWO_LEVEL))
        assert summaries["driver"].call_density > 0.0
        assert summaries["leaf"].call_density == 0.0

    def test_as_dict_round_trips_fields(self):
        summary = summarize_unit(parse(_TWO_LEVEL))["leaf"]
        data = summary.as_dict()
        assert data["name"] == "leaf"
        assert data["flops"] == summary.flops
        assert data["resolved"] is True
