"""Tests for the static cost oracle: kernel cost reports, the
cross-validation trust gate, roofline prediction, margin dominance,
and the PrunePlan artifact (including its JSON round trip, checked
property-based)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import (
    DEFAULT_PRUNE_MARGIN,
    ORACLE_TOLERANCE,
    PrunePlan,
    PrunedPoint,
    RooflinePredictor,
    _margin_dominated,
    build_prune_plan,
    cross_validate,
    kernel_cost_report,
    point_key,
    roofline_classification,
)
from repro.analysis.flagsafety import FlagSafetyVerdict
from repro.engine.model import DesignPoint, DesignSpace
from repro.gcc.flags import standard_levels
from repro.machine.openmp import BindingPolicy
from repro.machine.registry import resolve_machine
from repro.polybench.suite import load
from repro.polybench.workload import bound_environment, profile_kernel


def _standard_space(machine):
    return DesignSpace(
        compiler_configs=standard_levels(),
        thread_counts=list(range(1, machine.logical_cpus + 1)),
    )


class TestKernelCostReport:
    @pytest.mark.parametrize("name", ["mvt", "2mm", "jacobi-2d"])
    def test_oracle_matches_the_profiler_exactly(self, name):
        """The static census reproduces the workload profiler's counts
        — the property the trust gate relies on."""
        app = load(name)
        unit = app.parse()
        kernel = app.kernels[0]
        report = kernel_cost_report(unit, kernel)
        assert report.resolved
        profile = profile_kernel(app, kernel, unit=unit)
        errors = cross_validate(report, profile)
        assert errors["flops"] == 0.0
        assert errors["memory_ops"] == 0.0
        assert errors["working_set"] == 0.0
        assert errors["intensity"] == 0.0

    def test_data_dependent_kernel_is_unresolved(self):
        app = load("nussinov")
        report = kernel_cost_report(app.parse(), app.kernels[0])
        assert not report.resolved

    def test_nests_carry_depth_and_iterations(self):
        app = load("2mm")
        report = kernel_cost_report(app.parse(), app.kernels[0])
        assert report.nests
        assert all(nest.depth >= 1 for nest in report.nests)
        assert all(nest.iterations > 0 for nest in report.nests)
        assert report.max_depth == max(nest.depth for nest in report.nests)

    def test_unknown_kernel_raises(self):
        app = load("mvt")
        with pytest.raises(ValueError):
            kernel_cost_report(app.parse(), "not_a_kernel")

    def test_as_dict_is_json_serializable(self):
        app = load("mvt")
        report = kernel_cost_report(app.parse(), app.kernels[0])
        assert json.loads(json.dumps(report.as_dict()))["kernel"] == app.kernels[0]


class TestRoofline:
    def test_classification_names_a_bound(self):
        app = load("2mm")
        report = kernel_cost_report(app.parse(), app.kernels[0])
        outcome = roofline_classification(report, resolve_machine(None))
        assert outcome["bound"] in ("compute", "memory")
        assert outcome["ridge_flops_per_byte"] > 0

    def test_predictor_is_deterministic_and_cached(self):
        from repro.machine.executor import MachineExecutor
        from repro.machine.openmp import OpenMPRuntime

        machine = resolve_machine(None)
        executor = MachineExecutor(machine)
        omp = OpenMPRuntime(machine)
        app = load("mvt")
        profile = profile_kernel(app, app.kernels[0])
        predictor = RooflinePredictor(executor, omp)
        point = DesignPoint(
            compiler=standard_levels()[0], threads=4, binding=BindingPolicy.CLOSE
        )
        first = predictor.predict(profile, point)
        second = predictor.predict(profile, point)
        assert first == second
        assert first[0] > 0 and first[1] > 0


class TestPointKey:
    def test_key_is_unique_over_the_standard_space(self):
        machine = resolve_machine(None)
        points = list(_standard_space(machine).points())
        keys = [point_key(p) for p in points]
        assert len(set(keys)) == len(keys)

    def test_key_shape(self):
        point = DesignPoint(
            compiler=standard_levels()[2], threads=8, binding=BindingPolicy.SPREAD
        )
        assert point_key(point) == "-O2|t8|spread|-"


class TestMarginDominance:
    def test_dominator_must_win_on_both_axes(self):
        predictions = [
            ("good", 1.0, 10.0),        # fast AND cool
            ("fast_hot", 1.0, 100.0),   # fast but hot: no single point
            ("slow_cool", 10.0, 9.0),   # cool but slow: beats it on both
            ("bad", 10.0, 100.0),       # beaten on both by 'good'
        ]
        dominated = _margin_dominated(predictions, 0.12)
        assert [entry[0] for entry in dominated] == ["bad"]
        (entry,) = dominated
        assert entry[1] == "good"

    def test_margin_is_respected(self):
        # B is 10% worse on both axes: dominated at 5% margin, not 12%
        predictions = [("a", 1.0, 1.0), ("b", 1.1, 1.1)]
        assert _margin_dominated(predictions, 0.05)
        assert not _margin_dominated(predictions, 0.12)

    def test_equal_points_do_not_dominate_each_other(self):
        predictions = [("a", 1.0, 1.0), ("b", 1.0, 1.0)]
        assert _margin_dominated(predictions, 0.12) == []


class TestBuildPrunePlan:
    def test_trusted_app_yields_a_nonempty_sound_plan(self):
        machine = resolve_machine(None)
        app = load("syr2k")
        plan = build_prune_plan(app, _standard_space(machine), machine=machine)
        assert plan.trusted
        assert plan.space_size == 256
        assert plan.masked_count > 0
        assert 0.0 < plan.masked_fraction() < 1.0
        assert all(
            value <= ORACLE_TOLERANCE for value in plan.validation.values()
        )
        for pruned in plan.masked.values():
            assert pruned.dominated_by in (
                point_key(p) for p in _standard_space(machine).points()
            )
            assert "margin-dominated" in pruned.reason

    def test_untrusted_oracle_yields_an_empty_plan(self):
        machine = resolve_machine(None)
        app = load("nussinov")  # data-dependent loops: resolved=False
        plan = build_prune_plan(app, _standard_space(machine), machine=machine)
        assert not plan.trusted
        assert plan.masked_count == 0

    def test_invalid_margin_is_rejected(self):
        machine = resolve_machine(None)
        app = load("mvt")
        for margin in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                build_prune_plan(
                    app, _standard_space(machine), machine=machine, margin=margin
                )

    def test_is_masked_matches_recorded_keys(self):
        machine = resolve_machine(None)
        app = load("syr2k")
        space = _standard_space(machine)
        plan = build_prune_plan(app, space, machine=machine)
        masked = [p for p in space.points() if plan.is_masked(p)]
        assert len(masked) == plan.masked_count
        assert all(point_key(p) in plan.masked for p in masked)


_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-|.", min_size=1, max_size=20
)
_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0.0, max_value=1e6
)
_pruned_points = st.builds(
    PrunedPoint,
    key=_names,
    reason=_names,
    dominated_by=_names,
    predicted_time_s=_floats,
    predicted_power_w=_floats,
)
_verdicts = st.builds(
    FlagSafetyVerdict,
    unsafe_flags=st.tuples(st.sampled_from(["UNSAFE_MATH"])) | st.just(()),
    pointless_flags=st.tuples(st.sampled_from(["NO_INLINE_FUNCTIONS"])) | st.just(()),
    rules=st.lists(
        st.sampled_from(["FPS201", "FPS202", "FPS203", "FPS204"]),
        unique=True,
        max_size=4,
    ).map(tuple),
)


class TestPrunePlanRoundTrip:
    @given(
        app=_names,
        kernel=_names,
        margin=st.floats(min_value=0.01, max_value=0.99),
        trusted=st.booleans(),
        space_size=st.integers(min_value=0, max_value=4096),
        points=st.lists(_pruned_points, max_size=8),
        validation=st.dictionaries(
            st.sampled_from(["flops", "memory_ops", "working_set", "intensity"]),
            _floats,
            max_size=4,
        ),
        verdict=_verdicts,
    )
    @settings(max_examples=80, deadline=None)
    def test_json_round_trip_is_identity(
        self, app, kernel, margin, trusted, space_size, points, validation, verdict
    ):
        plan = PrunePlan(
            app=app,
            kernel=kernel,
            margin=margin,
            trusted=trusted,
            space_size=space_size,
            validation=validation,
            flag_safety=verdict,
        )
        for pruned in points:
            plan.record(pruned)
        encoded = json.dumps(plan.as_dict(), sort_keys=True)
        restored = PrunePlan.from_dict(json.loads(encoded))
        assert restored.as_dict() == plan.as_dict()
        assert restored.masked == plan.masked
        assert restored.flag_safety == plan.flag_safety

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ValueError):
            PrunePlan.from_dict({"format": 2})

    def test_real_plan_round_trips(self):
        machine = resolve_machine(None)
        app = load("syr2k")
        plan = build_prune_plan(app, _standard_space(machine), machine=machine)
        restored = PrunePlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert restored.as_dict() == plan.as_dict()
        assert restored.masked_count == plan.masked_count


class TestDefaultMarginIsNoiseSafe:
    def test_margin_is_many_sigma(self):
        """The lognormal noise sigmas (2% time, 1.2% power) make a 12%
        mutual margin >5 sigma on each axis — the soundness argument
        for bit-identical fronts."""
        assert DEFAULT_PRUNE_MARGIN >= 5 * 0.02
