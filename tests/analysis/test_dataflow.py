"""Tests for the CIR dataflow layer (repro.cir.dataflow)."""

import pytest

from repro.cir import ast, parse
from repro.cir.dataflow import (
    READ,
    WRITE,
    classify_sharing,
    collect_accesses,
    declared_names,
    def_use_chains,
    is_parallel_for_pragma,
    parallel_regions,
    parse_omp_clauses,
    references_variable,
    ReachingDefinitions,
)


def _func(body: str, params: str = "int n", name: str = "f") -> ast.FunctionDef:
    return parse(f"void {name}({params}) {{\n{body}\n}}").function(name)


class TestCollectAccesses:
    def test_simple_assign(self):
        func = _func("x = y + 1;", params="int x, int y")
        accesses = collect_accesses(func.body)
        kinds = [(a.name, a.kind) for a in accesses]
        assert ("y", READ) in kinds
        assert ("x", WRITE) in kinds
        write = next(a for a in accesses if a.kind == WRITE)
        assert write.op == "=" and not write.compound

    def test_compound_assign_reads_and_writes(self):
        func = _func("x += y;", params="int x, int y")
        accesses = collect_accesses(func.body)
        x_accesses = [a for a in accesses if a.name == "x"]
        assert [a.kind for a in x_accesses] == [READ, WRITE]
        assert all(a.compound for a in x_accesses)
        assert x_accesses[1].op == "+="

    def test_increment(self):
        func = _func("n++;")
        accesses = collect_accesses(func.body)
        assert [(a.name, a.kind) for a in accesses] == [("n", READ), ("n", WRITE)]
        assert accesses[1].op == "++"

    def test_array_write_keeps_subscripts(self):
        func = _func("A[i][j] = 0;", params="int i, int j")
        write = [a for a in collect_accesses(func.body) if a.kind == WRITE][0]
        assert write.name == "A" and write.is_array
        assert len(write.indices) == 2
        # subscripts themselves are reads
        reads = {a.name for a in collect_accesses(func.body) if a.kind == READ}
        assert {"i", "j"} <= reads

    def test_call_name_is_not_an_access(self):
        func = _func("g(x);", params="int x")
        names = {a.name for a in collect_accesses(func.body)}
        assert names == {"x"}

    def test_decl_with_init_is_a_write(self):
        func = _func("int t = n;")
        accesses = collect_accesses(func.body)
        assert ("t", WRITE) in [(a.name, a.kind) for a in accesses]

    def test_sizeof_operand_not_evaluated(self):
        func = _func("n = sizeof(x);", params="int x")
        names = {a.name for a in collect_accesses(func.body) if a.kind == READ}
        assert "x" not in names


class TestDeclaredNames:
    def test_nested_decls_found(self):
        func = _func("int a; { int b; for (a = 0; a < n; a++) { int c; } }")
        assert {"a", "b", "c"} <= declared_names(func.body)


class TestReachingDefinitions:
    def test_straight_line(self):
        func = _func("int x = 1; n = x;")
        rd = ReachingDefinitions(func)
        use = [a for a in collect_accesses(func.body) if a.name == "x" and a.kind == READ][0]
        defs = rd.definitions_reaching(use.node)
        assert len(defs) == 1 and defs[0].name == "x"

    def test_branch_joins_definitions(self):
        func = _func("int x = 1; if (n) x = 2; n = x;")
        rd = ReachingDefinitions(func)
        reads = [a for a in collect_accesses(func.body) if a.name == "x" and a.kind == READ]
        defs = rd.definitions_reaching(reads[-1].node)
        assert len(defs) == 2  # both the init and the then-branch write

    def test_loop_carried_definition_reaches_body_use(self):
        func = _func("int s = 0; int i; for (i = 0; i < n; i++) s = s + i; n = s;")
        rd = ReachingDefinitions(func)
        reads = [a for a in collect_accesses(func.body) if a.name == "s" and a.kind == READ]
        body_read = reads[0]
        defs = {id(d.node) for d in rd.definitions_reaching(body_read.node)}
        # the in-loop write must reach the in-loop read (fixpoint)
        assert len(defs) == 2

    def test_def_use_chains(self):
        func = _func("int x = 1; n = x; n = x;")
        chains = def_use_chains(func)
        decl = func.body.stmts[0]
        assert len(chains.uses_of(decl)) >= 2


class TestOmpClauses:
    def test_full_clause_set(self):
        clauses = parse_omp_clauses(
            "omp parallel for private(i, j) firstprivate(a) lastprivate(b) "
            "shared(A) reduction(+:s) num_threads(__socrates_num_threads) "
            "proc_bind(close) schedule(static)"
        )
        assert clauses.private == frozenset({"i", "j"})
        assert clauses.firstprivate == frozenset({"a"})
        assert clauses.lastprivate == frozenset({"b"})
        assert clauses.shared == frozenset({"A"})
        assert clauses.reductions == (("+", "s"),)
        assert clauses.num_threads == "__socrates_num_threads"
        assert clauses.proc_bind == "close"
        assert clauses.schedule == "static"
        assert clauses.privatized == frozenset({"i", "j", "a", "b", "s"})

    def test_malformed_reduction_skipped(self):
        clauses = parse_omp_clauses("omp parallel for reduction(s)")
        assert clauses.reductions == ()

    def test_is_parallel_for(self):
        assert is_parallel_for_pragma(ast.Pragma(text="omp parallel for"))
        assert not is_parallel_for_pragma(ast.Pragma(text="omp parallel"))
        assert not is_parallel_for_pragma(ast.Pragma(text="GCC optimize (\"O2\")"))
        # "for" must be a whole word
        assert not is_parallel_for_pragma(ast.Pragma(text="omp parallel forward"))


class TestParallelRegions:
    SRC = """
    void k(int n) {
      int i;
      int j;
      #pragma omp parallel for private(j)
      for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
          A[i][j] = i + j;
    }
    """

    def test_region_found_with_loop(self):
        func = parse(self.SRC).function("k")
        regions = parallel_regions(func)
        assert len(regions) == 1
        assert regions[0].loop is not None
        assert regions[0].clauses.private == frozenset({"j"})

    def test_orphan_pragma_has_no_loop(self):
        func = _func("#pragma omp parallel for\n n = 1;")
        regions = parallel_regions(func)
        assert len(regions) == 1 and regions[0].loop is None


class TestClassifySharing:
    def test_induction_and_locals_are_private(self):
        func = parse(TestParallelRegions.SRC).function("k")
        report = classify_sharing(parallel_regions(func)[0])
        assert report.induction == "i"
        assert "i" in report.privatized and "j" in report.privatized
        # A is written with an induction-indexed subscript but still shared
        assert report.is_shared("A")
        assert any(a.name == "A" for a in report.shared_writes)

    def test_shared_scalar_write_detected(self):
        func = _func(
            "int i; double s = 0.0;\n"
            "#pragma omp parallel for\n"
            "for (i = 0; i < n; i++) s = s + i;"
        )
        report = classify_sharing(parallel_regions(func)[0])
        writes = [a for a in report.shared_writes if a.name == "s"]
        assert writes and not writes[0].is_array

    def test_reduction_clause_privatizes(self):
        func = _func(
            "int i; double s = 0.0;\n"
            "#pragma omp parallel for reduction(+:s)\n"
            "for (i = 0; i < n; i++) s = s + i;"
        )
        report = classify_sharing(parallel_regions(func)[0])
        assert not any(a.name == "s" for a in report.shared_writes)

    def test_region_without_loop_returns_none(self):
        func = _func("#pragma omp parallel for\n n = 1;")
        assert classify_sharing(parallel_regions(func)[0]) is None


class TestReferencesVariable:
    def test_positive_and_negative(self):
        func = _func("x = a[i] + 1;", params="int i, int x")
        expr = func.body.stmts[0].expr.rhs
        assert references_variable(expr, "i")
        assert not references_variable(expr, "j")
