"""Tests for the interval abstract domain and the per-function
interpreter: lattice laws (property-based), widening termination,
soundness of abstract arithmetic vs. concrete evaluation, loop facts,
and array footprints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intervals import (
    BOTTOM,
    TOP,
    Interval,
    analyze_function,
    array_footprints,
    eval_interval,
    join_envs,
    loop_constant_facts,
    trip_interval,
    widen_envs,
)
from repro.cir import parse
from repro.cir.analysis import collect_loops

_bounds = st.integers(min_value=-40, max_value=40)
_maybe_bound = st.one_of(st.none(), _bounds)
# Interval() canonicalizes lo > hi to BOTTOM, so raw pairs are fine
_intervals = st.one_of(
    st.just(BOTTOM),
    st.just(TOP),
    st.builds(Interval, _maybe_bound, _maybe_bound),
)


def _member(data, interval):
    """Draw one concrete member of a non-empty interval."""
    lo = interval.lo if interval.lo is not None else -1000
    hi = interval.hi if interval.hi is not None else 1000
    return data.draw(st.integers(min_value=lo, max_value=hi))


class TestLatticeLaws:
    @given(a=_intervals, b=_intervals)
    def test_join_commutes_and_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert joined == b.join(a)
        assert joined.covers(a) and joined.covers(b)

    @given(a=_intervals, b=_intervals)
    def test_meet_commutes_and_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert met == b.meet(a)
        assert a.covers(met) and b.covers(met)

    @given(a=_intervals, b=_intervals, c=_intervals)
    def test_join_and_meet_associate(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(a=_intervals)
    def test_idempotence_and_units(self, a):
        assert a.join(a) == a and a.meet(a) == a
        assert a.join(BOTTOM) == a and a.meet(TOP) == a
        assert a.join(TOP) == TOP and a.meet(BOTTOM) == BOTTOM

    @given(a=_intervals, b=_intervals)
    def test_absorption(self, a, b):
        assert a.join(a.meet(b)) == a
        assert a.meet(a.join(b)) == a

    @given(a=_intervals, b=_intervals)
    def test_widen_is_upper_bound(self, a, b):
        widened = a.widen(b)
        assert widened.covers(a) and widened.covers(b)

    @given(start=_intervals, chain=st.lists(_intervals, max_size=12))
    def test_widening_terminates(self, start, chain):
        """Iterated widening stabilizes after finitely many changes:
        each bound can only jump to its infinity once, so the iterate
        takes at most four distinct values over ANY input sequence."""
        current = start
        values = {current}
        for newer in chain:
            current = current.widen(newer)
            values.add(current)
        assert len(values) <= 4
        # and the result is a post-fixpoint of every chain element
        for newer in chain:
            assert current.widen(newer).covers(current)


class TestAbstractArithmeticSoundness:
    @given(a=_intervals, b=_intervals, data=st.data())
    @settings(max_examples=150)
    def test_add_sub_mul_contain_concrete_results(self, a, b, data):
        if a.empty or b.empty:
            assert (a + b).empty and (a - b).empty and (a * b).empty
            return
        x = _member(data, a)
        y = _member(data, b)
        assert (a + b).contains(x + y)
        assert (a - b).contains(x - y)
        assert (a * b).contains(x * y)
        assert (-a).contains(-x)

    @given(a=_intervals, b=_intervals, data=st.data())
    @settings(max_examples=150)
    def test_div_mod_contain_concrete_results(self, a, b, data):
        if a.empty or b.empty:
            return
        x = _member(data, a)
        y = _member(data, b)
        if y == 0:
            return
        # C semantics: truncation toward zero
        quotient = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            quotient = -quotient
        assert a.div(b).contains(quotient)
        remainder = x - quotient * y
        assert a.mod(b).contains(remainder)

    @given(a=_intervals, data=st.data())
    def test_membership_respects_bounds(self, a, data):
        if a.empty:
            assert a.width == 0
            return
        assert a.contains(_member(data, a))


class TestEvalInterval:
    def _expr(self, text):
        unit = parse(f"void f(void) {{ x = {text}; }}")
        return unit.function("f").body.stmts[0].expr.rhs

    def test_constant_folding(self):
        assert eval_interval(self._expr("2 + 3 * 4"), {}) == Interval.const(14)

    def test_variable_ranges_propagate(self):
        env = {"i": Interval(0, 9), "n": Interval.const(10)}
        assert eval_interval(self._expr("i + 1"), env) == Interval(1, 10)
        assert eval_interval(self._expr("n - i"), env) == Interval(1, 10)
        assert eval_interval(self._expr("2 * i"), env) == Interval(0, 18)

    def test_unmodelled_shapes_go_to_top(self):
        env = {"i": Interval(0, 9)}
        assert eval_interval(self._expr("A[i]"), env).is_top
        assert eval_interval(self._expr("f(i)"), env).is_top

    def test_comparisons_are_boolean(self):
        assert eval_interval(self._expr("i < 3"), {}) == Interval(0, 1)

    def test_division_by_interval_containing_zero_is_top(self):
        env = {"d": Interval(-1, 1)}
        assert eval_interval(self._expr("10 / d"), env).is_top


class TestFunctionAnalysis:
    def test_locally_constant_bound_resolves_trip(self):
        unit = parse(
            """
            void k(void) {
              int i;
              int n;
              n = 32;
              for (i = 0; i < n; i++)
                ;
            }
            """
        )
        func = unit.function("k")
        facts = analyze_function(func)
        (loop,) = [info.node for info in collect_loops(func.body)]
        loop_facts = facts.loops[id(loop)]
        assert loop_facts.constants["n"] == 32
        assert loop_facts.trip == Interval.const(32)
        assert loop_facts.iv_range == Interval(0, 31)
        assert facts.resolved

    def test_loop_constant_facts_feed_trip_count(self):
        unit = parse(
            """
            void k(void) {
              int i;
              int n;
              n = 16;
              for (i = 0; i < n; i++)
                ;
            }
            """
        )
        func = unit.function("k")
        facts = loop_constant_facts(func)
        (info,) = collect_loops(func.body)
        assert info.trip_count({}, facts[id(info.node)]) == 16

    def test_data_dependent_bound_is_unresolved(self):
        unit = parse(
            """
            double A[10];
            void k(int n) {
              int i;
              for (i = 0; i < A[0]; i++)
                ;
            }
            """
        )
        facts = analyze_function(unit.function("k"))
        assert not facts.resolved

    def test_branch_refinement_narrows_both_arms(self):
        unit = parse(
            """
            void k(int n) {
              int x;
              x = 5;
              if (n < 3)
                x = n;
            }
            """
        )
        facts = analyze_function(unit.function("k"), {"n": 2})
        assert facts.exit_env["x"] == Interval(2, 5)

    def test_triangular_nest_trip_is_a_range(self):
        unit = parse(
            """
            void k(void) {
              int i;
              int j;
              for (i = 0; i < 8; i++)
                for (j = i; j < 8; j++)
                  ;
            }
            """
        )
        func = unit.function("k")
        facts = analyze_function(func)
        loops = collect_loops(func.body)
        inner = next(info for info in loops if info.parent is not None)
        trip = facts.loops[id(inner.node)].trip
        # j runs 8-i times for i in [0, 7]: between 1 and 8 iterations
        assert trip is not None
        assert trip.contains(1) and trip.contains(8)

    def test_trip_interval_handles_downward_loops(self):
        unit = parse(
            """
            void k(void) {
              int i;
              for (i = 9; i >= 0; i--)
                ;
            }
            """
        )
        func = unit.function("k")
        (info,) = collect_loops(func.body)
        assert trip_interval(info.node, {}) == Interval.const(10)


class TestEnvOperations:
    def test_join_envs_tops_out_one_sided_names(self):
        a = {"x": Interval(0, 1), "y": Interval(3, 4)}
        b = {"x": Interval(5, 6)}
        joined = join_envs(a, b)
        assert joined["x"] == Interval(0, 6)
        assert "y" not in joined  # TOP entries are dropped

    def test_widen_envs_jumps_grown_bounds(self):
        older = {"x": Interval(0, 4)}
        newer = {"x": Interval(0, 8)}
        assert widen_envs(older, newer)["x"] == Interval(0, None)


class TestArrayFootprints:
    def test_footprints_follow_induction_ranges(self):
        unit = parse(
            """
            double A[64][64];
            void k(void) {
              int i;
              int j;
              for (i = 0; i < 16; i++)
                for (j = 0; j < 32; j++)
                  A[i][j] = 1.0;
            }
            """
        )
        func = unit.function("k")
        facts = analyze_function(func)
        footprints = array_footprints(func.body, facts, declared={"A": (64, 64)})
        assert footprints["A"].extents == (16, 32)
        assert footprints["A"].element_count == 512
        assert footprints["A"].bytes() == 4096.0

    def test_unknown_extent_falls_back_to_declaration(self):
        unit = parse(
            """
            double A[10];
            void k(int n) {
              int i;
              for (i = 0; i < n; i++)
                A[i] = 0.0;
            }
            """
        )
        func = unit.function("k")
        facts = analyze_function(func)
        footprints = array_footprints(func.body, facts, declared={"A": (10,)})
        assert footprints["A"].extents == (10,)
