"""Tests for the OpenMP race detector (rules OMP001-OMP004)."""

import pytest

from repro.analysis import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    CheckReport,
    Severity,
    check_source_text,
    check_unit,
)
from repro.analysis.checker import (
    apply_suppressions,
    collect_suppressions,
    parse_suppress_pragma,
)
from repro.cir import parse


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestRaceRules:
    def test_shared_scalar_write_is_omp001_error(self):
        diags = check_source_text(
            """
            void k(int n) {
              int i;
              double s = 0.0;
              #pragma omp parallel for
              for (i = 0; i < n; i++)
                s = s + i;
            }
            """,
            filename="race.c",
        )
        # the racy accumulation is also a flag-safety hazard (FPS201)
        assert _rules(diags) == ["OMP001", "FPS201"]
        diag = diags[0]
        assert diag.severity is Severity.ERROR
        assert diag.function == "k"
        assert diag.file == "race.c" and diag.line is not None
        assert "reduction(+:s)" in diag.hint

    def test_scratch_scalar_hint_suggests_private(self):
        diags = check_source_text(
            """
            void k(int n) {
              int i;
              double t;
              #pragma omp parallel for
              for (i = 0; i < n; i++)
                t = i * 2;
            }
            """
        )
        assert _rules(diags) == ["OMP001"]
        assert "private(t)" in diags[0].hint

    def test_reduction_clause_silences_omp001(self):
        diags = check_source_text(
            """
            void k(int n) {
              int i;
              double s = 0.0;
              #pragma omp parallel for reduction(+:s)
              for (i = 0; i < n; i++)
                s = s + i;
            }
            """
        )
        # the reduction clause silences the race, but the FP reduction
        # remains a fast-math hazard
        assert _rules(diags) == ["FPS201"]

    def test_array_write_without_induction_subscript_is_omp002(self):
        diags = check_source_text(
            """
            double A[10][10];
            void k(int n) {
              int i;
              int j;
              #pragma omp parallel for private(j)
              for (i = 0; i < n; i++)
                for (j = 0; j < n; j++)
                  A[0][j] = A[0][j] + 1.0;
            }
            """
        )
        assert _rules(diags) == ["OMP002"]
        assert diags[0].severity is Severity.WARNING

    def test_induction_indexed_array_write_is_clean(self):
        diags = check_source_text(
            """
            double A[10][10];
            void k(int n) {
              int i;
              int j;
              #pragma omp parallel for private(j)
              for (i = 0; i < n; i++)
                for (j = 0; j < n; j++)
                  A[i][j] = i + j;
            }
            """
        )
        assert diags == []

    def test_orphan_pragma_is_omp003(self):
        diags = check_source_text(
            """
            void k(int n) {
              #pragma omp parallel for
              n = n + 1;
            }
            """
        )
        assert _rules(diags) == ["OMP003"]
        assert diags[0].severity is Severity.WARNING

    def test_unrecognized_induction_is_omp004(self):
        diags = check_source_text(
            """
            void k(int n) {
              int i;
              i = 0;
              #pragma omp parallel for
              for (; i < n; )
                n = n;
            }
            """
        )
        # neither init nor step reveal the induction variable
        assert "OMP004" in _rules(diags)

    def test_step_expression_recovers_induction(self):
        # an empty init no longer defeats the analysis: the ++ step
        # identifies the induction variable, so OMP004 stays quiet and
        # the real classification (here: a clean loop) runs instead
        diags = check_source_text(
            """
            double A[10];
            void k(int n) {
              int i;
              i = 0;
              #pragma omp parallel for
              for (; i < n; i++)
                A[i] = 1.0;
            }
            """
        )
        assert "OMP004" not in _rules(diags)

    def test_one_diagnostic_per_variable(self):
        diags = check_source_text(
            """
            void k(int n) {
              int i;
              double s;
              #pragma omp parallel for
              for (i = 0; i < n; i++) {
                s = s + 1.0;
                s = s + 2.0;
              }
            }
            """
        )
        # one OMP001 per variable; the loop itself is one FPS201
        assert _rules(diags) == ["OMP001", "FPS201"]


class TestSuppression:
    RACY = """
    void k(int n) {{
      int i;
      double s = 0.0;
      {suppress}
      #pragma omp parallel for
      for (i = 0; i < n; i++)
        s = s + i;
    }}
    """

    def test_parse_suppress_pragma(self):
        assert parse_suppress_pragma("socrates suppress(OMP001)") == frozenset(
            {"OMP001"}
        )
        assert parse_suppress_pragma("socrates suppress(omp001, WV104)") == frozenset(
            {"OMP001", "WV104"}
        )
        assert parse_suppress_pragma("omp parallel for") is None

    def test_statement_suppression_covers_pragma_loop_pair(self):
        src = self.RACY.format(
            suppress="#pragma socrates suppress(OMP001, FPS201)"
        )
        assert check_source_text(src) == []

    def test_wrong_rule_does_not_suppress(self):
        src = self.RACY.format(suppress="#pragma socrates suppress(OMP002)")
        assert _rules(check_source_text(src)) == ["OMP001", "FPS201"]

    def test_function_level_suppression(self):
        src = """
        #pragma socrates suppress(OMP001, FPS201)
        void k(int n) {
          int i;
          double s = 0.0;
          #pragma omp parallel for
          for (i = 0; i < n; i++)
            s = s + i;
        }
        """
        assert check_source_text(src) == []

    def test_fps_rule_suppressible_alone(self):
        src = self.RACY.format(suppress="#pragma socrates suppress(FPS201)")
        assert _rules(check_source_text(src)) == ["OMP001"]

    def test_collect_suppressions_finds_spans(self):
        src = self.RACY.format(suppress="#pragma socrates suppress(OMP001)")
        spans = collect_suppressions(parse(src))
        assert len(spans) == 1
        _, rules = spans[0]
        assert rules == frozenset({"OMP001"})


class TestExitCodes:
    def test_report_exit_codes(self):
        report = CheckReport()
        assert report.exit_code == EXIT_CLEAN
        warn = check_source_text(
            """
            double A[10];
            void k(int n) {
              int i;
              int j;
              #pragma omp parallel for private(j)
              for (i = 0; i < n; i++)
                for (j = 0; j < n; j++)
                  A[0] = 1.0;
            }
            """
        )
        report.extend(warn, units=1)
        assert report.exit_code == EXIT_WARNINGS
        err = check_source_text(
            """
            void k(int n) {
              int i;
              double s;
              #pragma omp parallel for
              for (i = 0; i < n; i++)
                s = s + 1.0;
            }
            """
        )
        report.extend(err, units=1)
        assert report.exit_code == EXIT_ERRORS
        assert "1 error(s)" in report.summary()

    def test_as_dict_and_sarif_shape(self):
        report = CheckReport()
        report.extend(
            check_source_text(
                """
                void k(int n) {
                  int i;
                  double s;
                  #pragma omp parallel for
                  for (i = 0; i < n; i++)
                    s = s + 1.0;
                }
                """,
                filename="x.c",
            ),
            units=1,
        )
        doc = report.as_dict()
        assert doc["format"] == 1 and doc["errors"] == 1
        assert doc["diagnostics"][0]["rule"] == "OMP001"
        sarif = report.as_sarif()
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "socrates-check"
        assert run["results"][0]["ruleId"] == "OMP001"
        assert run["results"][0]["level"] == "error"
        # the driver now carries the full catalogue, fired or not
        from repro.analysis.rules import RULES

        driver_rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in driver_rules] == sorted(RULES)
        for result in run["results"]:
            assert driver_rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert "socratesCheck/v1" in result["partialFingerprints"]


class TestSuiteIsClean:
    @pytest.mark.parametrize("name", ["2mm", "mvt", "correlation"])
    def test_pristine_sources_have_no_errors(self, name):
        from repro.polybench.suite import load

        app = load(name)
        diags = check_unit(app.parse(), filename=f"{name}.c")
        assert [d for d in diags if d.severity is Severity.ERROR] == []
