"""Tests for the weave verifier (rules WV101-WV106).

Each break case weaves a real benchmark, mutates the woven unit the
way a buggy strategy would, and asserts the exact rule fires with a
usable location.
"""

import copy

import pytest

from repro.analysis import Severity, check_unit, verify_weave
from repro.cir import ast, parse
from repro.cir.printer import to_source_with_map
from repro.cir.dataflow import parallel_regions
from repro.cir.visitor import walk
from repro.gcc.flags import paper_custom_flags, standard_levels
from repro.lara.metrics import weave_benchmark
from repro.lara.strategies.multiversioning import THREADS_VARIABLE
from repro.polybench.suite import load


def _weave(name="mvt"):
    configs = standard_levels() + paper_custom_flags()
    _, weaver = weave_benchmark(load(name), configs)
    return weaver


def _rules(diagnostics):
    return sorted({d.rule for d in diagnostics})


class TestCleanWeave:
    def test_woven_suite_sample_verifies_clean(self):
        weaver = _weave()
        _, lines = to_source_with_map(weaver.unit)
        assert verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c", lines) == []

    def test_plan_populated_by_weave_benchmark(self):
        weaver = _weave()
        assert weaver.plan is not None
        assert weaver.plan.kernels and weaver.plan.wrappers
        assert weaver.plan.main == "main"


class TestBreakCases:
    def test_dropped_call_site_rewrite_fires_wv104(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        # un-rewrite the first wrapper call back to the original kernel
        reverted = None
        for func in weaver.unit.functions():
            if func.name in set(result.version_names) | {result.wrapper}:
                continue
            for node in walk(func.body):
                if isinstance(node, ast.Call) and node.name == result.wrapper:
                    node.func.name = result.kernel
                    reverted = func.name
                    break
            if reverted:
                break
        assert reverted is not None
        diags = check_unit(weaver.unit, "mvt.weaved.c", phase="woven", plan=weaver.plan)
        wv104 = [d for d in diags if d.rule == "WV104"]
        assert wv104, f"expected WV104, got {_rules(diags)}"
        assert wv104[0].severity is Severity.ERROR
        assert wv104[0].function == reverted
        assert wv104[0].line is not None
        assert result.kernel in wv104[0].message

    def test_stripped_proc_bind_fires_wv103(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        clone = weaver.unit.function(result.version_names[0])
        stripped = 0
        for node in walk(clone.body):
            if isinstance(node, ast.Pragma) and "proc_bind" in node.text:
                node.text = node.text[: node.text.index("proc_bind")].rstrip()
                stripped += 1
        assert stripped
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        wv103 = [d for d in diags if d.rule == "WV103"]
        assert wv103
        assert all(d.severity is Severity.ERROR for d in wv103)
        assert any("proc_bind" in d.message for d in wv103)
        assert wv103[0].function == clone.name

    def test_wrong_num_threads_fires_wv103(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        clone = weaver.unit.function(result.version_names[0])
        for node in walk(clone.body):
            if isinstance(node, ast.Pragma) and THREADS_VARIABLE in node.text:
                node.text = node.text.replace(THREADS_VARIABLE, "4")
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        assert any(
            d.rule == "WV103" and "num_threads" in d.message for d in diags
        )

    def test_removed_default_arm_fires_wv102(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        wrapper = weaver.unit.function(result.wrapper)
        # drop the unconditional else arm at the end of the chain
        stmt = wrapper.body.stmts[0]
        assert isinstance(stmt, ast.If)
        while isinstance(stmt.other, ast.If):
            stmt = stmt.other
        assert stmt.other is not None
        stmt.other = None
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        rules = _rules(diags)
        assert "WV102" in rules
        # the dropped arm also breaks dispatch coverage
        assert "WV101" in rules
        wv102 = [d for d in diags if d.rule == "WV102"][0]
        assert wv102.severity is Severity.ERROR
        assert wv102.function == result.wrapper

    def test_injected_shared_write_fires_omp001(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        clone = weaver.unit.function(result.version_names[0])
        region = parallel_regions(clone)[0]
        helper = parse("void h(double sum) { sum = sum + 1.0; }").function("h")
        race = helper.body.stmts[0]
        region.loop.body = ast.Block(stmts=[region.loop.body, race])
        diags = check_unit(weaver.unit, "mvt.weaved.c", phase="woven", plan=weaver.plan)
        omp001 = [d for d in diags if d.rule == "OMP001"]
        assert omp001
        assert omp001[0].severity is Severity.ERROR
        assert omp001[0].function == clone.name
        assert omp001[0].line is not None
        assert "'sum'" in omp001[0].message
        assert "reduction(+:sum)" in omp001[0].hint

    def test_duplicated_control_variable_fires_wv105(self):
        weaver = _weave()
        for index, decl in enumerate(weaver.unit.decls):
            if isinstance(decl, ast.Decl) and decl.name == THREADS_VARIABLE:
                weaver.unit.decls.insert(index, copy.deepcopy(decl))
                break
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        wv105 = [d for d in diags if d.rule == "WV105"]
        assert wv105 and "2 time(s)" in wv105[0].message

    def test_removed_margot_log_fires_wv106(self):
        weaver = _weave()
        removed = False
        main = weaver.unit.function("main")
        for block in (n for n in walk(main.body) if isinstance(n, ast.Block)):
            for stmt in list(block.stmts):
                if (
                    isinstance(stmt, ast.ExprStmt)
                    and isinstance(stmt.expr, ast.Call)
                    and stmt.expr.name == "margot_log"
                ):
                    block.stmts.remove(stmt)
                    removed = True
                    break
            if removed:
                break
        assert removed
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        wv106 = [d for d in diags if d.rule == "WV106"]
        assert wv106
        assert any("margot_log" in d.message for d in wv106)

    def test_missing_clone_fires_wv101(self):
        weaver = _weave()
        result = weaver.plan.kernels[0]
        victim = result.version_names[0]
        weaver.unit.decls = [
            d
            for d in weaver.unit.decls
            if not (isinstance(d, ast.FunctionDef) and d.name == victim)
        ]
        diags = verify_weave(weaver.unit, weaver.plan, "mvt.weaved.c")
        wv101 = [d for d in diags if d.rule == "WV101"]
        assert any(victim in d.message for d in wv101)


class TestToolflowGate:
    def test_broken_weave_aborts_the_build(self, monkeypatch):
        from repro.core.toolflow import SocratesToolflow, WeaveVerificationError
        import repro.core.toolflow as toolflow_mod

        original = toolflow_mod.weave_benchmark

        def sabotage(app, configs):
            report, weaver = original(app, configs)
            result = weaver.plan.kernels[0]
            wrapper = weaver.unit.function(result.wrapper)
            stmt = wrapper.body.stmts[0]
            while isinstance(stmt.other, ast.If):
                stmt = stmt.other
            stmt.other = None
            return report, weaver

        monkeypatch.setattr(toolflow_mod, "weave_benchmark", sabotage)
        flow = SocratesToolflow(thread_counts=[1], dse_repetitions=1)
        with pytest.raises(WeaveVerificationError, match="WV10"):
            flow.build(load("mvt"))

    def test_clean_build_reports_diagnostics_list(self):
        from repro.core.toolflow import SocratesToolflow

        flow = SocratesToolflow(thread_counts=[1, 4], dse_repetitions=1)
        result = flow.build(load("mvt"))
        assert result.check_diagnostics == []

    def test_gate_surfaces_warnings_via_obs(self, monkeypatch):
        from repro.core.toolflow import SocratesToolflow
        from repro.obs import Observability
        import repro.core.toolflow as toolflow_mod

        original = toolflow_mod.weave_benchmark

        def inject_warning(app, configs):
            report, weaver = original(app, configs)
            result = weaver.plan.kernels[0]
            clone = weaver.unit.function(result.version_names[0])
            region = parallel_regions(clone)[0]
            helper = parse(
                "void h(void) { B[0] = B[0] + 1.0; }"
            ).function("h")
            region.loop.body = ast.Block(
                stmts=[region.loop.body, helper.body.stmts[0]]
            )
            return report, weaver

        monkeypatch.setattr(toolflow_mod, "weave_benchmark", inject_warning)
        obs = Observability()
        flow = SocratesToolflow(thread_counts=[1], dse_repetitions=1, obs=obs)
        result = flow.build(load("mvt"))
        assert any(d.rule == "OMP002" for d in result.check_diagnostics)
        from repro.obs.export import prometheus_text

        dump = prometheus_text(obs.metrics)
        assert "socrates_check_diagnostics_total" in dump
        assert obs.audit.checks and obs.audit.checks[0].rule == "OMP002"
        # the adaptation JSONL schema is untouched by check traces
        assert obs.audit.as_dicts() == []
