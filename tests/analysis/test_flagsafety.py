"""Tests for the flag-safety rules FPS201-FPS204 and the verdict
consumed by the prune plan and COBAYN corpus builder."""

from repro.analysis.flagsafety import (
    FlagSafetyVerdict,
    check_unit_flag_safety,
    flag_safety_verdict,
    unsafe_config_labels,
)
from repro.cir import parse
from repro.gcc.flags import Flag, standard_levels


def _rules(diags):
    return [d.rule for d in diags]


_REDUCTION = """
double A[100];
double dot(void) {
  int i;
  double s = 0.0;
  for (i = 0; i < 100; i++)
    s = s + A[i] * A[i];
  return s;
}
"""


class TestFps201:
    def test_fp_reduction_is_flagged(self):
        diags = check_unit_flag_safety(parse(_REDUCTION), "dot.c")
        assert _rules(diags) == ["FPS201"]
        assert diags[0].function == "dot"
        assert "suppress(FPS201)" in diags[0].hint

    def test_streaming_update_is_not_a_reduction(self):
        unit = parse(
            """
            double A[100];
            void scale(void) {
              int i;
              for (i = 0; i < 100; i++)
                A[i] = 2.0 * A[i];
            }
            """
        )
        assert check_unit_flag_safety(unit, "scale.c") == []


class TestFps202:
    def test_shifted_subscript_dependence_is_flagged(self):
        unit = parse(
            """
            double A[100];
            void shift(void) {
              int i;
              for (i = 1; i < 100; i++)
                A[i] = A[i - 1] + 1.0;
            }
            """
        )
        assert "FPS202" in _rules(check_unit_flag_safety(unit, "shift.c"))


class TestFps203:
    def test_call_dense_loop_is_flagged(self):
        unit = parse(
            """
            double A[100];
            double f(double x) { return x + 1.0; }
            void k(void) {
              int i;
              for (i = 0; i < 100; i++)
                A[i] = f(A[i]);
            }
            """
        )
        diags = check_unit_flag_safety(unit, "k.c")
        assert "FPS203" in _rules(diags)
        verdict = flag_safety_verdict(unit, "k")
        assert "NO_INLINE_FUNCTIONS" in verdict.pointless_flags

    def test_external_calls_do_not_count(self):
        unit = parse(
            """
            double A[100];
            void k(void) {
              int i;
              for (i = 0; i < 100; i++)
                A[i] = external_fn(A[i]);
            }
            """
        )
        assert "FPS203" not in _rules(check_unit_flag_safety(unit, "k.c"))


class TestFps204:
    _INTERPROC = """
    double A[100];
    double partial(void) {
      int i;
      double s = 0.0;
      for (i = 0; i < 100; i++)
        s = s + A[i];
      return s;
    }
    double B[10];
    void caller(void) {
      int t;
      for (t = 0; t < 10; t++)
        B[t] = partial();
    }
    """

    def test_caller_inherits_the_hazard(self):
        diags = check_unit_flag_safety(parse(self._INTERPROC), "x.c")
        by_function = {d.function: d.rule for d in diags}
        assert by_function["partial"] == "FPS201"
        assert by_function["caller"] == "FPS204"

    def test_verdict_records_the_interprocedural_rule(self):
        verdict = flag_safety_verdict(parse(self._INTERPROC), "caller")
        assert "UNSAFE_MATH" in verdict.unsafe_flags
        assert "FPS204" in verdict.rules


class TestVerdict:
    def test_clean_unit_has_empty_verdict(self):
        unit = parse(
            """
            double A[10][10];
            void k(void) {
              int i;
              int j;
              for (i = 0; i < 10; i++)
                for (j = 0; j < 10; j++)
                  A[i][j] = i + j;
            }
            """
        )
        verdict = flag_safety_verdict(unit)
        assert verdict == FlagSafetyVerdict((), (), ())
        assert unsafe_config_labels(verdict, standard_levels()) == ()

    def test_unsafe_labels_cover_fast_math_configs(self):
        from repro.gcc.flags import cobayn_space

        verdict = flag_safety_verdict(parse(_REDUCTION), "dot")
        assert verdict.unsafe_flags == ("UNSAFE_MATH",)
        # the standard levels carry no fast-math: nothing to exclude
        assert unsafe_config_labels(verdict, standard_levels()) == ()
        # half the COBAYN space does
        labels = unsafe_config_labels(verdict, cobayn_space())
        assert len(labels) == 64
        for config in cobayn_space():
            assert (config.label in labels) == config.has(Flag.UNSAFE_MATH)

    def test_verdict_round_trips_through_dict(self):
        verdict = flag_safety_verdict(parse(_REDUCTION), "dot")
        assert FlagSafetyVerdict.from_dict(verdict.as_dict()) == verdict

    def test_unknown_flag_names_are_ignored(self):
        verdict = FlagSafetyVerdict(("NOT_A_FLAG",), (), ("FPS999",))
        assert unsafe_config_labels(verdict, standard_levels()) == ()
