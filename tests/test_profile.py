"""Tests for :mod:`repro.obs.profile` — the causal profiling
observatory: virtual-time flame graphs, differential profiles, and
what-if speedup attribution, plus their CLI (`socrates obs flame` /
`socrates obs whatif`) and bench-gate integration."""

import json
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.profile import (
    CONSERVATION_TOL,
    PROFILE_SCHEMA,
    FlameProfile,
    build_tree,
    attribute_energy,
    default_targets,
    diff_flame,
    load_chrome_trace,
    profile_vs_baseline,
    render_svg,
    rescale_tree,
    scaled_end_to_end_s,
    total_virtual_s,
    whatif,
    _walk,
)
from repro.obs.tracing import Span


def _span(name, sid, parent, start, end, track="main", attrs=None, ok=True):
    return Span(
        name=name,
        span_id=sid,
        parent_id=parent,
        start_s=start,
        end_s=end,
        ok=ok,
        track=track,
        attributes=attrs or {},
    )


def _sample_spans():
    """A bench root, two stages, and a two-member worker lane."""
    return [
        _span("bench:x", 1, None, 0.0, 4.7),
        _span("stage:a", 2, 1, 0.1, 2.0),
        _span(
            "truth:k@1t/compact", 3, 2, 0.2, 1.0,
            track="pool-0", attrs={"threads": 1},
        ),
        _span(
            "truth:k@2t/compact", 4, 2, 1.1, 1.9,
            track="pool-0", attrs={"threads": 2},
        ),
        _span("stage:b", 5, 1, 2.0, 4.5),
    ]


def _end_to_end(roots):
    return sum(root.duration_s for root in roots)


class TestBuildTree:
    def test_parentage_and_order(self):
        roots = build_tree(_sample_spans())
        assert [root.name for root in roots] == ["bench:x"]
        (bench,) = roots
        assert [child.name for child in bench.children] == [
            "stage:a",
            "stage:b",
        ]
        stage_a = bench.children[0]
        assert [child.name for child in stage_a.children] == [
            "truth:k@1t/compact",
            "truth:k@2t/compact",
        ]

    def test_self_time_subtracts_same_track_children_only(self):
        roots = build_tree(_sample_spans())
        (bench,) = roots
        stage_a = bench.children[0]
        # worker-lane children run concurrently: they do not reduce
        # the parent's own (serial) self time
        assert stage_a.self_s == pytest.approx(1.9)
        # same-track children do
        assert bench.self_s == pytest.approx(4.7 - 1.9 - 2.5)

    def test_conservation_total_equals_sum_of_self(self):
        roots = build_tree(_sample_spans())
        total = total_virtual_s(roots)
        assert sum(node.self_s for node in _walk(roots)) == pytest.approx(
            total, abs=CONSERVATION_TOL
        )


class TestFlameProfile:
    def test_collapse_stacks(self):
        profile = FlameProfile.from_spans(_sample_spans())
        assert "bench:x" in profile.stacks
        assert "bench:x;stage:a;truth:k@1t/compact" in profile.stacks
        assert profile.total_self_s == pytest.approx(
            total_virtual_s(build_tree(_sample_spans())), abs=CONSERVATION_TOL
        )

    def test_folded_round_trip_is_lossless(self):
        profile = FlameProfile.from_spans(_sample_spans())
        clone = FlameProfile.from_folded(profile.as_folded())
        assert clone.self_by_stack() == profile.self_by_stack()
        assert clone.as_folded() == profile.as_folded()

    def test_json_round_trip(self):
        profile = FlameProfile.from_spans(_sample_spans(), label="sample")
        document = json.loads(json.dumps(profile.as_dict()))
        assert document["schema"] == PROFILE_SCHEMA
        clone = FlameProfile.from_dict(document)
        assert clone.label == "sample"
        assert clone.self_by_stack() == profile.self_by_stack()

    def test_format_table_names_and_totals(self):
        profile = FlameProfile.from_spans(_sample_spans())
        table = profile.format_table()
        assert "span name" in table and "bench:x" in table
        names = profile.names()
        # inclusive total of the root is the whole virtual time
        assert names["bench:x"].total_s == pytest.approx(
            profile.total_self_s, abs=CONSERVATION_TOL
        )

    def test_render_svg_is_self_contained(self):
        profile = FlameProfile.from_spans(_sample_spans())
        svg = render_svg(profile, title="t")
        assert svg.startswith("<svg ") and svg.rstrip().endswith("</svg>")
        assert "bench:x" in svg

    def test_chrome_trace_round_trip(self, tmp_path):
        from repro.obs.export import write_chrome_trace

        path = tmp_path / "trace.json"
        write_chrome_trace(_sample_spans(), path)
        roots = load_chrome_trace(path)
        live = FlameProfile.from_spans(_sample_spans())
        loaded = FlameProfile.from_tree(roots)
        assert set(loaded.stacks) == set(live.stacks)
        for stack, stat in live.stacks.items():
            # Chrome export rounds to microseconds
            assert loaded.stacks[stack].self_s == pytest.approx(
                stat.self_s, abs=1e-5
            )


class TestEnergyJoin:
    def _ledger(self):
        stage = types.SimpleNamespace(stage="a", energy_j={"package": 10.0})
        entry = types.SimpleNamespace(
            compiler="-O2",
            threads=1,
            binding="compact",
            energy_j={"package": 4.0},
        )
        return types.SimpleNamespace(stages=[stage], entries=[entry])

    def test_stage_and_operating_point_attribution(self):
        spans = _sample_spans() + [
            _span(
                "kernel.execute", 6, 5, 2.1, 2.3,
                attrs={"compiler": "-O2", "threads": 1, "binding": "compact"},
            ),
            _span(
                "kernel.execute", 7, 5, 2.4, 3.0,
                attrs={"compiler": "-O2", "threads": 1, "binding": "compact"},
            ),
        ]
        roots = build_tree(spans)
        energy = attribute_energy(roots, self._ledger())
        # the stage entry lands on stage:a, whole
        assert energy[2] == pytest.approx(10.0)
        # the operating point splits across both kernel.execute spans,
        # proportionally to duration (0.2s and 0.6s), conserving joules
        assert energy[6] + energy[7] == pytest.approx(4.0)
        assert energy[7] == pytest.approx(3.0)
        # idle stays unattributed: total attributed == total booked
        assert sum(energy.values()) == pytest.approx(14.0)

    def test_energy_flows_into_profile_and_whatif(self):
        roots = build_tree(_sample_spans())
        energy = attribute_energy(roots, self._ledger())
        profile = FlameProfile.from_tree(roots, energy=energy)
        assert profile.has_energy
        assert profile.total_energy_j == pytest.approx(10.0)
        report = whatif(
            roots, speedups=(0.5,), energy=energy, total_energy_j=20.0
        )
        row = next(row for row in report.rows if row.target == "stage:*")
        outcome = row.outcome_at(0.5)
        # conserving: new total = booked total - matched/2
        assert outcome.energy_j == pytest.approx(20.0 - 5.0)
        assert outcome.energy_improvement == pytest.approx(0.25)


class TestStackDiff:
    def test_statuses_and_ordering(self):
        a = FlameProfile.from_folded("x;y 1.0\nx;z 2.0\ngone 0.5\n")
        b = FlameProfile.from_folded("x;y 3.0\nx;z 1.5\nnew 0.25\n")
        diff = diff_flame(a, b)
        by_stack = {delta.stack: delta for delta in diff.deltas}
        assert by_stack["x;y"].status == "grown"
        assert by_stack["x;z"].status == "shrunk"
        assert by_stack["gone"].status == "gone"
        assert by_stack["new"].status == "new"
        # sorted by |delta| descending
        magnitudes = [abs(delta.delta_s) for delta in diff.changed]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_identical_profiles_have_no_changes(self):
        profile = FlameProfile.from_spans(_sample_spans())
        diff = diff_flame(profile, profile)
        assert diff.changed == []


class TestWhatIf:
    def test_zero_speedup_is_exact(self):
        roots = build_tree(_sample_spans())
        baseline = _end_to_end(roots)
        report = whatif(roots, speedups=(0.0,))
        assert report.baseline_end_to_end_s == baseline
        for row in report.rows:
            assert row.outcomes[0].end_to_end_s == baseline
            assert row.outcomes[0].improvement == 0.0

    def test_prediction_matches_physical_replay(self):
        roots = build_tree(_sample_spans())
        for target in default_targets(roots):
            matched = [node for node in _walk(roots) if target.matcher(node)]
            if not matched:
                continue
            factors = {node.span_id: 0.5 for node in matched}
            predicted = scaled_end_to_end_s(roots, factors)
            actual = _end_to_end(rescale_tree(roots, factors))
            assert predicted == pytest.approx(actual, abs=1e-12), target.label

    def test_worker_lane_is_not_on_critical_path(self):
        # the pool lane (1.6s busy inside a 1.9s stage) never dominates
        # the serial chain, so speeding the truths up buys nothing
        roots = build_tree(_sample_spans())
        report = whatif(roots, speedups=(0.75,))
        row = next(row for row in report.rows if row.target == "truth:*")
        assert row.outcomes[0].improvement == pytest.approx(0.0)

    def test_hinted_targets_agree_with_matcher_scan(self):
        roots = build_tree(_sample_spans())
        for target in default_targets(roots):
            scan = [node for node in _walk(roots) if target.matcher(node)]
            report = whatif(roots, speedups=(0.5,), targets=[target])
            if not scan:
                assert report.rows == []
                continue
            assert report.rows[0].matched_spans == len(scan)
            assert report.rows[0].matched_self_s == pytest.approx(
                sum(node.self_s for node in scan)
            )

    def test_knob_targets_require_two_values(self):
        targets = default_targets(build_tree(_sample_spans()))
        labels = {target.label for target in targets}
        assert "knob:threads=1" in labels and "knob:threads=2" in labels
        # `ok` etc. are not knobs; single-valued keys never appear
        assert not any(label.startswith("knob:compiler") for label in labels)

    def test_report_format_and_dict(self):
        roots = build_tree(_sample_spans())
        report = whatif(roots)
        text = report.format()
        assert "what-if" in text and "stage:*" in text
        document = report.as_dict()
        assert document["baseline_end_to_end_s"] == _end_to_end(roots)
        assert document["rows"]

    def test_rejects_bad_speedups(self):
        roots = build_tree(_sample_spans())
        with pytest.raises(ValueError):
            whatif(roots, speedups=(1.0,))
        with pytest.raises(ValueError):
            whatif(roots, speedups=(-0.1,))


# ---------------------------------------------------------------------------
# property tests (satellite): random trees, conservation + 0% identity
# ---------------------------------------------------------------------------

_names = st.sampled_from(
    ["a", "b", "stage:x", "stage:y", "truth:k", "kernel.execute"]
)
_pads = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)


def _tree_specs():
    leaf = st.tuples(_names, _pads, st.just([]))
    return st.recursive(
        leaf,
        lambda child: st.tuples(_names, _pads, st.lists(child, max_size=3)),
        max_leaves=12,
    )


def _lay_out(spec, start, counter, spans, parent=None):
    """Realize a (name, pad, children) spec as sequential nested spans."""
    name, pad, children = spec
    sid = counter[0]
    counter[0] += 1
    cursor = start + pad / 2
    for child in children:
        cursor = _lay_out(child, cursor, counter, spans, parent=sid)
    end = cursor + pad / 2
    spans.append(_span(name, sid, parent, start, end))
    return end


def _random_roots(specs):
    spans = []
    counter = [1]
    cursor = 0.0
    for spec in specs:
        cursor = _lay_out(spec, cursor, counter, spans)
    return build_tree(spans)


class TestProfileProperties:
    @given(st.lists(_tree_specs(), min_size=1, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_folded_round_trip_conserves_total_virtual_time(self, specs):
        """Collapse -> folded text -> expand preserves the total
        virtual time to better than 1e-9."""
        roots = _random_roots(specs)
        total = total_virtual_s(roots)
        profile = FlameProfile.from_tree(roots)
        clone = FlameProfile.from_folded(profile.as_folded())
        tolerance = max(CONSERVATION_TOL, CONSERVATION_TOL * total)
        assert abs(profile.total_self_s - total) < tolerance
        assert abs(clone.total_self_s - total) < tolerance
        # the text form itself is lossless, not merely close
        assert clone.self_by_stack() == profile.self_by_stack()

    @given(
        st.lists(_tree_specs(), min_size=1, max_size=3),
        st.sets(_names, min_size=1, max_size=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_zero_speedup_reproduces_original_timings_exactly(
        self, specs, names
    ):
        """A 0% what-if is the identity — bit-exact, no float drift."""
        roots = _random_roots(specs)
        matched = [node for node in _walk(roots) if node.name in names]
        factors = {node.span_id: 1.0 for node in matched}
        assert scaled_end_to_end_s(roots, factors) == _end_to_end(roots)
        report = whatif(roots, speedups=(0.0,))
        for row in report.rows:
            assert row.outcomes[0].end_to_end_s == _end_to_end(roots)


# ---------------------------------------------------------------------------
# bench-gate integration: committed stacks attribute regressions
# ---------------------------------------------------------------------------


class TestGateStackAttribution:
    def _baseline(self):
        from repro.bench import BenchBaseline, run_scenario

        result = run_scenario("single_build", repeats=2)
        return BenchBaseline.from_result(result), result

    def test_baseline_carries_stacks_and_round_trips(self, tmp_path):
        from repro.bench import load_baseline, save_baseline

        baseline, result = self._baseline()
        assert baseline.stacks
        path = save_baseline(baseline, tmp_path / "BENCH_single_build.json")
        clone = load_baseline(path)
        assert set(clone.stacks) == set(baseline.stacks)
        sample = next(iter(baseline.stacks))
        assert clone.stacks[sample].self_s.median == pytest.approx(
            baseline.stacks[sample].self_s.median
        )

    def test_gate_report_names_offending_stack(self):
        from repro.bench import BenchBaseline, compare_result, run_scenario

        baseline, result = self._baseline()
        report = compare_result(baseline, result)
        assert report.stack_diff is not None
        # inflate one stack's baseline so the fresh run "grows" it
        grown_stack = max(
            result.stack_totals, key=lambda s: result.stack_counts.get(s, 0)
        )
        shrunk = {
            stack: (
                [v / 3 for v in values] if stack == grown_stack else values
            )
            for stack, values in result.stack_totals.items()
        }
        lowered = BenchBaseline.from_result(
            type(result)(
                scenario=result.scenario,
                repeats=result.repeats,
                wall_s=result.wall_s,
                span_totals=result.span_totals,
                span_counts=result.span_counts,
                fingerprint=result.fingerprint,
                peak_rss_kb=result.peak_rss_kb,
                energy_j=result.energy_j,
                ratios=result.ratios,
                spans=result.spans,
                stack_totals=shrunk,
                stack_counts=result.stack_counts,
            )
        )
        report = compare_result(lowered, result)
        offender = report.offending_stack()
        assert offender is not None
        assert offender.stack == grown_stack
        assert any(
            entry["stack"] == grown_stack
            for entry in report.as_dict()["stack_offenders"]
        )

    def test_profile_vs_baseline_diff(self, tmp_path):
        baseline, result = self._baseline()
        profile = FlameProfile.from_spans(result.spans, label="fresh")
        diff = profile_vs_baseline(profile, baseline)
        assert diff.label_a == "BENCH_single_build"
        # medians of a 2-repeat run of a deterministic workload are the
        # observed values themselves: nothing should be new or gone
        statuses = {delta.status for delta in diff.deltas}
        assert "new" not in statuses and "gone" not in statuses


class TestProfilingOverheadScenario:
    def test_scenario_fingerprint_and_ratio(self):
        from repro.bench import run_scenario

        result = run_scenario("profiling_overhead", repeats=1)
        fingerprint = result.fingerprint
        assert fingerprint["records_identical"] is True
        assert fingerprint["folded_round_trip_conserves"] is True
        assert fingerprint["stacks"] > 0 and fingerprint["targets"] > 0
        (ratio,) = result.ratios["profiling_overhead"]
        assert 0.0 < ratio < 0.35  # the committed cap


# ---------------------------------------------------------------------------
# CLI: socrates obs flame / whatif / validate
# ---------------------------------------------------------------------------


class TestProfileCli:
    def _write_trace(self, tmp_path, name="trace.json"):
        from repro.obs.export import write_chrome_trace

        path = tmp_path / name
        write_chrome_trace(_sample_spans(), path)
        return path

    def test_flame_table_from_trace(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert main(["obs", "flame", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span name" in out and "bench:x" in out

    def test_flame_folded_and_validate(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        out_file = tmp_path / "profile.folded"
        assert (
            main(
                [
                    "obs", "flame", "--trace", str(trace),
                    "--folded", "--out", str(out_file),
                ]
            )
            == 0
        )
        assert main(["obs", "validate", str(out_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_flame_out_dir_writes_all_three(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "obs", "flame", "--trace", str(trace),
                    "--out-dir", str(out_dir),
                ]
            )
            == 0
        )
        for name in ("profile.folded", "profile.json", "flame.svg"):
            assert (out_dir / name).exists(), name
        assert (
            main(
                [
                    "obs", "validate",
                    str(out_dir / "profile.folded"),
                    str(out_dir / "profile.json"),
                ]
            )
            == 0
        )
        document = json.loads((out_dir / "profile.json").read_text())
        assert document["schema"] == PROFILE_SCHEMA

    def test_flame_json_mode(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert main(["obs", "flame", "--trace", str(trace), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == PROFILE_SCHEMA

    def test_flame_diff_mixed_formats(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        folded = tmp_path / "a.folded"
        profile = FlameProfile.from_spans(_sample_spans())
        folded.write_text(profile.as_folded())
        assert (
            main(["obs", "flame", "--diff", str(folded), str(trace)]) == 0
        )
        out = capsys.readouterr().out
        assert "stack diff:" in out

    def test_flame_diff_json(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert (
            main(
                ["obs", "flame", "--diff", str(trace), str(trace), "--json"]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["delta_total_s"] == 0.0
        assert all(
            delta["status"] == "unchanged" for delta in document["stacks"]
        )

    def test_whatif_from_trace(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert main(["obs", "whatif", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "what-if" in out and "stage:*" in out

    def test_whatif_json_and_speedups(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert (
            main(
                [
                    "obs", "whatif", "--trace", str(trace),
                    "--speedups", "50", "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["speedups"] == [0.5]
        assert document["rank_speedup"] == 0.5

    def test_whatif_bad_speedups_exit_2(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert (
            main(
                [
                    "obs", "whatif", "--trace", str(trace),
                    "--speedups", "fast",
                ]
            )
            == 2
        )
        assert "speedups" in capsys.readouterr().err

    def test_source_required_exit_2(self, capsys):
        assert main(["obs", "whatif"]) == 2
        assert "APP" in capsys.readouterr().err

    def test_against_baseline(self, tmp_path, capsys):
        from repro.bench import BenchBaseline, run_scenario, save_baseline

        result = run_scenario("single_build", repeats=1)
        baseline = BenchBaseline.from_result(result)
        path = save_baseline(baseline, tmp_path / "BENCH_single_build.json")
        assert (
            main(
                [
                    "obs", "whatif", "--scenario", "single_build",
                    "--limit", "3",
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "obs", "flame", "--scenario", "single_build",
                    "--against-baseline", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stack diff:" in out and "BENCH_single_build" in out

    def test_against_baseline_without_stacks_exit_2(self, tmp_path, capsys):
        from repro.bench import BenchBaseline, run_scenario, save_baseline

        result = run_scenario("single_build", repeats=1)
        baseline = BenchBaseline.from_result(result)
        stripped = BenchBaseline(
            scenario=baseline.scenario,
            repeats=baseline.repeats,
            wall_s=baseline.wall_s,
            stages=baseline.stages,
            fingerprint=baseline.fingerprint,
            peak_rss_kb=baseline.peak_rss_kb,
        )
        path = save_baseline(stripped, tmp_path / "BENCH_single_build.json")
        assert (
            main(
                [
                    "obs", "flame", "--scenario", "single_build",
                    "--against-baseline", str(path),
                ]
            )
            == 2
        )
        assert "stacks" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# acceptance: whatif on the seeded suite_sweep trace
# ---------------------------------------------------------------------------


class TestAcceptance:
    def test_suite_sweep_whatif_ranks_truth_evaluation(self):
        """The seeded suite_sweep what-if must rank the machine-model
        truth evaluation among its top-3 causal targets, and the 50%
        prediction must match a physical replay with those durations
        actually halved to within 5%."""
        from repro.bench import run_scenario

        result = run_scenario("suite_sweep", repeats=1)
        roots = build_tree(result.spans)
        report = whatif(roots)
        top3 = [row.target for row in report.rows[:3]]
        truth_evaluation = {"engine.evaluate", "backend.run_truths", "truth:*"}
        ranked = truth_evaluation & set(top3)
        assert ranked, f"no truth-evaluation target in top-3: {top3}"

        target_label = sorted(ranked)[0]
        row = next(row for row in report.rows if row.target == target_label)
        predicted = row.outcome_at(0.50).end_to_end_s
        if target_label.endswith(":*"):
            prefix = target_label[:-1]
            matched = [
                node
                for node in _walk(roots)
                if node.name.startswith(prefix)
            ]
        else:
            matched = [
                node for node in _walk(roots) if node.name == target_label
            ]
        factors = {node.span_id: 0.5 for node in matched}
        actual = _end_to_end(rescale_tree(roots, factors))
        assert abs(predicted - actual) / actual < 0.05
