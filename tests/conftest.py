"""Shared fixtures.

Expensive artifacts (the COBAYN corpus, a full toolflow build) are
session-scoped so the many tests that need them pay the cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gcc.compiler import Compiler
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import OpenMPRuntime
from repro.machine.topology import default_machine
from repro.polybench.suite import all_apps, load


@pytest.fixture(scope="session")
def machine():
    return default_machine()


@pytest.fixture(scope="session")
def omp(machine):
    return OpenMPRuntime(machine)


@pytest.fixture(scope="session")
def compiler():
    return Compiler()


@pytest.fixture(scope="session")
def executor(machine):
    return MachineExecutor(machine)


@pytest.fixture(scope="session")
def apps():
    return all_apps()


@pytest.fixture(scope="session")
def two_mm():
    return load("2mm")


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def corpus(apps, compiler, executor, omp):
    from repro.cobayn.corpus import build_corpus

    return build_corpus(apps, compiler, executor, omp)


@pytest.fixture(scope="session")
def toolflow():
    """A toolflow with a reduced thread sweep to keep tests quick."""
    from repro.core.toolflow import SocratesToolflow

    return SocratesToolflow(
        dse_repetitions=3, thread_counts=[1, 2, 4, 8, 16, 24, 32]
    )


@pytest.fixture(scope="session")
def built_2mm(toolflow, two_mm):
    """A fully built adaptive 2mm (the expensive end-to-end artifact)."""
    return toolflow.build(two_mm)
