"""Tests for design-space exploration and Pareto filtering."""

import numpy as np
import pytest

from repro.dse.explorer import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
)
from repro.dse.pareto import pareto_filter, pareto_front
from repro.dse.strategies import (
    FullFactorialStrategy,
    LatinHypercubeStrategy,
    RandomStrategy,
)
from repro.gcc.flags import FlagConfiguration, OptLevel, standard_levels
from repro.machine.openmp import BindingPolicy
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


@pytest.fixture(scope="module")
def small_space():
    return DesignSpace(
        compiler_configs=standard_levels(),
        thread_counts=[1, 4, 16],
    )


@pytest.fixture(scope="module")
def exploration(small_space, compiler, executor, omp):
    explorer = DesignSpaceExplorer(compiler, executor, omp, repetitions=4)
    return explorer.explore(profile_kernel(load("2mm")), small_space)


def simple_op(threads, time, power):
    return OperatingPoint(
        knobs={"threads": threads},
        metrics={
            "time": MetricStats(time),
            "power": MetricStats(power),
            "throughput": MetricStats(1.0 / time),
        },
    )


class TestDesignSpace:
    def test_size(self, small_space):
        assert small_space.size == 4 * 3 * 2

    def test_points_enumerated(self, small_space):
        points = small_space.points()
        assert len(points) == small_space.size
        assert len(set(points)) == small_space.size

    def test_point_fields(self, small_space):
        point = small_space.points()[0]
        assert isinstance(point, DesignPoint)
        assert point.binding in BindingPolicy


class TestStrategies:
    def test_full_factorial_selects_all(self, small_space):
        rng = np.random.default_rng(0)
        selected = FullFactorialStrategy().select(small_space.points(), rng)
        assert len(selected) == small_space.size

    def test_random_fraction(self, small_space):
        rng = np.random.default_rng(0)
        selected = RandomStrategy(fraction=0.5, minimum=1).select(
            small_space.points(), rng
        )
        assert len(selected) == small_space.size // 2
        assert len(set(selected)) == len(selected)

    def test_random_minimum_enforced(self, small_space):
        rng = np.random.default_rng(0)
        selected = RandomStrategy(fraction=0.01, minimum=5).select(
            small_space.points(), rng
        )
        assert len(selected) == 5

    def test_random_invalid_fraction(self):
        with pytest.raises(ValueError):
            RandomStrategy(fraction=0.0)

    def test_lhs_covers_strata(self, small_space):
        rng = np.random.default_rng(0)
        points = small_space.points()
        selected = LatinHypercubeStrategy(samples=6).select(points, rng)
        assert len(selected) == 6
        # one point per sixth of the (ordered) space
        indices = sorted(points.index(point) for point in selected)
        for stratum, index in enumerate(indices):
            assert stratum * 4 <= index < (stratum + 1) * 4

    def test_lhs_more_samples_than_points(self, small_space):
        rng = np.random.default_rng(0)
        selected = LatinHypercubeStrategy(samples=999).select(
            small_space.points(), rng
        )
        assert len(selected) == small_space.size


class TestExplorer:
    def test_knowledge_has_all_points(self, exploration, small_space):
        assert len(exploration.knowledge) == small_space.size
        assert exploration.coverage == 1.0

    def test_operating_point_schema(self, exploration):
        assert set(exploration.knowledge.knob_names) == {
            "compiler",
            "threads",
            "binding",
        }
        assert set(exploration.knowledge.metric_names) == {
            "time",
            "throughput",
            "power",
            "energy",
        }

    def test_repetitions_produce_std(self, exploration):
        stds = [point.metric("time").std for point in exploration.knowledge]
        assert any(std > 0 for std in stds)

    def test_samples_recorded(self, exploration, small_space):
        assert len(exploration.samples) == small_space.size
        assert all(len(sample.times) == 4 for sample in exploration.samples)

    def test_throughput_consistent_with_time(self, exploration):
        for point in exploration.knowledge:
            time = point.metric("time").mean
            throughput = point.metric("throughput").mean
            assert throughput == pytest.approx(1.0 / time, rel=0.05)

    def test_more_threads_more_power(self, exploration):
        one = exploration.knowledge.find(compiler="-O2", threads=1, binding="close")
        sixteen = exploration.knowledge.find(
            compiler="-O2", threads=16, binding="close"
        )
        assert sixteen.metric("power").mean > one.metric("power").mean

    def test_invalid_repetitions(self, compiler, executor, omp):
        with pytest.raises(ValueError):
            DesignSpaceExplorer(compiler, executor, omp, repetitions=0)

    def test_seeded_exploration_reproducible(
        self, small_space, compiler, omp, machine
    ):
        from repro.machine.executor import MachineExecutor

        profile = profile_kernel(load("2mm"))
        results = []
        for _ in range(2):
            executor = MachineExecutor(machine, seed=77)
            explorer = DesignSpaceExplorer(compiler, executor, omp, repetitions=2)
            outcome = explorer.explore(profile, small_space, seed=5)
            results.append(
                [point.metric("time").mean for point in outcome.knowledge]
            )
        assert results[0] == results[1]


class TestPareto:
    def test_dominated_point_removed(self):
        points = [
            simple_op(1, time=1.0, power=50.0),
            simple_op(2, time=0.9, power=45.0),  # dominates the first
        ]
        front = pareto_filter(points, [("time", False), ("power", False)])
        assert len(front) == 1
        assert front[0].knob("threads") == 2

    def test_incomparable_points_kept(self):
        points = [
            simple_op(1, time=1.0, power=40.0),
            simple_op(2, time=0.5, power=90.0),
        ]
        front = pareto_filter(points, [("time", False), ("power", False)])
        assert len(front) == 2

    def test_duplicate_points_both_kept(self):
        points = [
            simple_op(1, time=1.0, power=50.0),
            simple_op(2, time=1.0, power=50.0),
        ]
        front = pareto_filter(points, [("time", False), ("power", False)])
        assert len(front) == 2  # neither strictly dominates

    def test_maximize_orientation(self):
        points = [
            simple_op(1, time=1.0, power=50.0),  # throughput 1.0
            simple_op(2, time=2.0, power=50.0),  # throughput 0.5, same power
        ]
        front = pareto_filter(points, [("throughput", True), ("power", False)])
        assert [p.knob("threads") for p in front] == [1]

    def test_pareto_front_builds_knowledge_base(self, exploration):
        front = pareto_front(
            exploration.knowledge, [("throughput", True), ("power", False)]
        )
        assert isinstance(front, KnowledgeBase)
        assert 0 < len(front) <= len(exploration.knowledge)

    def test_front_members_not_dominated(self, exploration):
        objectives = [("throughput", True), ("power", False)]
        front = pareto_front(exploration.knowledge, objectives)
        all_points = exploration.knowledge.points()
        for member in front:
            for other in all_points:
                better_thr = other.metric("throughput").mean > member.metric(
                    "throughput"
                ).mean
                better_pow = other.metric("power").mean < member.metric("power").mean
                not_worse_thr = other.metric("throughput").mean >= member.metric(
                    "throughput"
                ).mean
                not_worse_pow = other.metric("power").mean <= member.metric("power").mean
                assert not (
                    not_worse_thr and not_worse_pow and (better_thr or better_pow)
                )
