"""Tests for the flag space and the analytical compiler model."""

import pytest

from repro.gcc.compiler import Compiler
from repro.gcc.flags import (
    COBAYN_SPACE_SIZE,
    Flag,
    FlagConfiguration,
    OptLevel,
    cobayn_space,
    paper_custom_flags,
    parse_label,
    standard_levels,
)
from repro.gcc.passes import CodegenEffect, build_effect, residual
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


@pytest.fixture(scope="module")
def p2mm():
    return profile_kernel(load("2mm"))


@pytest.fixture(scope="module")
def pjacobi():
    return profile_kernel(load("jacobi-2d"))


@pytest.fixture(scope="module")
def pnussinov():
    return profile_kernel(load("nussinov"))


class TestFlagSpace:
    def test_four_standard_levels(self):
        labels = [config.label for config in standard_levels()]
        assert labels == ["-Os", "-O1", "-O2", "-O3"]

    def test_cobayn_space_is_128(self):
        space = cobayn_space()
        assert len(space) == COBAYN_SPACE_SIZE
        assert len(set(space)) == COBAYN_SPACE_SIZE

    def test_cobayn_space_bases(self):
        levels = {config.level for config in cobayn_space()}
        assert levels == {OptLevel.O2, OptLevel.O3}

    def test_label_format(self):
        config = FlagConfiguration(OptLevel.O2, frozenset({Flag.NO_IVOPTS}))
        assert config.label == "-O2 -fno-ivopts"

    def test_pragma_text_matches_paper_example(self):
        config = FlagConfiguration(
            OptLevel.O2, frozenset({Flag.NO_INLINE_FUNCTIONS})
        )
        assert config.pragma_text == 'GCC optimize ("O2,no-inline-functions")'

    def test_mangled_is_identifier_safe(self):
        for config in cobayn_space():
            assert config.mangled.replace("_", "a").isalnum()

    def test_parse_label_round_trip(self):
        for config in cobayn_space()[:20]:
            assert parse_label(config.label) == config

    def test_parse_label_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_label("-O2 -fmystery-flag")

    def test_parse_label_requires_level(self):
        with pytest.raises(ValueError):
            parse_label("-fno-ivopts")

    def test_paper_custom_flags_match_figure4_caption(self):
        cf1, cf2, cf3, cf4 = paper_custom_flags()
        assert cf1.level is OptLevel.O3
        assert Flag.NO_IVOPTS in cf1.flags and len(cf1.flags) == 4
        assert cf2.flags == frozenset({Flag.NO_INLINE_FUNCTIONS, Flag.UNROLL_ALL_LOOPS})
        assert Flag.UNSAFE_MATH in cf3.flags
        assert cf4.flags == frozenset({Flag.NO_INLINE_FUNCTIONS})

    def test_configuration_hashable_and_label_sortable(self):
        space = cobayn_space()
        assert sorted(space, key=lambda config: config.label)
        assert len({hash(config) for config in space}) == len(space)


class TestPassModels:
    def test_residual_deterministic_and_bounded(self):
        value = residual("2mm", "unroll-all-loops")
        assert value == residual("2mm", "unroll-all-loops")
        assert 0.96 <= value <= 1.04

    def test_residual_differs_across_kernels(self):
        assert residual("2mm", "x") != residual("3mm", "x")

    def test_levels_monotone_for_scalar_code(self, pnussinov):
        # nussinov never vectorizes: O3 >= O2 >= O1 >= Os scalar rates
        rates = {}
        for level in OptLevel:
            effect = build_effect(pnussinov, FlagConfiguration(level))
            rates[level] = effect.fp_rate
        assert rates[OptLevel.O3] > rates[OptLevel.O2] > rates[OptLevel.O1]

    def test_o3_vectorizes_non_reduction_kernel(self, pjacobi):
        effect = build_effect(pjacobi, FlagConfiguration(OptLevel.O3))
        assert effect.vectorizable
        assert effect.vector_width == 4.0

    def test_o3_does_not_vectorize_reduction_without_unsafe_math(self, p2mm):
        effect = build_effect(p2mm, FlagConfiguration(OptLevel.O3))
        assert not effect.vectorizable

    def test_unsafe_math_unlocks_reduction_vectorization(self, p2mm):
        config = FlagConfiguration(OptLevel.O3, frozenset({Flag.UNSAFE_MATH}))
        effect = build_effect(p2mm, config)
        assert effect.vectorizable

    def test_o2_never_vectorizes(self, pjacobi):
        config = FlagConfiguration(OptLevel.O2, frozenset({Flag.UNSAFE_MATH}))
        effect = build_effect(pjacobi, config)
        assert not effect.vectorizable

    def test_no_inline_hurts_call_dense_kernel(self, pnussinov):
        base = build_effect(pnussinov, FlagConfiguration(OptLevel.O2))
        noinline = build_effect(
            pnussinov,
            FlagConfiguration(OptLevel.O2, frozenset({Flag.NO_INLINE_FUNCTIONS})),
        )
        assert noinline.call_cost > base.call_cost

    def test_unroll_shrinks_loop_control(self, p2mm):
        base = build_effect(p2mm, FlagConfiguration(OptLevel.O2))
        unrolled = build_effect(
            p2mm, FlagConfiguration(OptLevel.O2, frozenset({Flag.UNROLL_ALL_LOOPS}))
        )
        assert unrolled.int_rate > base.int_rate
        assert unrolled.code_size > base.code_size

    def test_os_smallest_code(self, p2mm):
        sizes = {
            level: build_effect(p2mm, FlagConfiguration(level)).code_size
            for level in OptLevel
        }
        assert sizes[OptLevel.OS] == min(sizes.values())
        assert sizes[OptLevel.O3] == max(sizes.values())


class TestCompiler:
    def test_compile_returns_positive_cycles(self, p2mm):
        compiler = Compiler()
        kernel = compiler.compile(p2mm, FlagConfiguration(OptLevel.O2))
        assert kernel.total_cycles > 0
        assert kernel.serial_cycles + kernel.parallel_cycles == pytest.approx(
            kernel.total_cycles
        )

    def test_compile_is_memoized(self, p2mm):
        compiler = Compiler()
        config = FlagConfiguration(OptLevel.O2)
        assert compiler.compile(p2mm, config) is compiler.compile(p2mm, config)

    def test_vectorized_version_fewer_cycles(self, p2mm):
        compiler = Compiler()
        plain = compiler.compile(p2mm, FlagConfiguration(OptLevel.O3))
        vectorized = compiler.compile(
            p2mm, FlagConfiguration(OptLevel.O3, frozenset({Flag.UNSAFE_MATH}))
        )
        assert vectorized.total_cycles < plain.total_cycles
        assert vectorized.vector_width == 4.0

    def test_parallel_fraction_preserved(self, p2mm):
        compiler = Compiler()
        kernel = compiler.compile(p2mm, FlagConfiguration(OptLevel.O2))
        assert kernel.parallel_cycles / kernel.total_cycles == pytest.approx(
            p2mm.parallel_fraction
        )

    def test_best_worst_spread_is_sane(self, p2mm):
        # iterative-compilation literature reports <= ~4x total spread
        compiler = Compiler()
        cycles = [
            compiler.compile(p2mm, config).total_cycles for config in cobayn_space()
        ]
        assert max(cycles) / min(cycles) < 6.0

    def test_power_intensity_higher_at_o3(self, p2mm):
        compiler = Compiler()
        o1 = compiler.compile(p2mm, FlagConfiguration(OptLevel.O1))
        o3 = compiler.compile(p2mm, FlagConfiguration(OptLevel.O3))
        assert o3.power_intensity > o1.power_intensity

    def test_different_kernels_prefer_different_flags(self):
        # the key premise of COBAYN: the best combination is per-kernel
        compiler = Compiler()
        winners = {}
        for name in ("2mm", "jacobi-2d", "nussinov", "syrk"):
            profile = profile_kernel(load(name))
            best = min(
                cobayn_space(),
                key=lambda config: compiler.compile(profile, config).total_cycles,
            )
            winners[name] = best.label
        assert len(set(winners.values())) >= 2
