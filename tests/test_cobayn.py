"""Tests for the COBAYN compiler autotuner and its Bayesian network."""

import numpy as np
import pytest

from repro.cobayn.autotuner import CobaynAutotuner
from repro.cobayn.bn import (
    BayesError,
    DiscreteBayesianNetwork,
    NodeSpec,
    learn_structure,
)
from repro.cobayn.corpus import (
    assignment_to_config,
    build_corpus,
    flag_assignment,
)
from repro.cobayn.discretize import Discretizer
from repro.gcc.flags import ALL_FLAGS, FlagConfiguration, OptLevel, cobayn_space
from repro.milepost.features import extract_features
from repro.polybench.suite import load


def rain_network():
    """The classic sprinkler network for inference sanity checks."""
    network = DiscreteBayesianNetwork(
        [NodeSpec("rain", 2), NodeSpec("sprinkler", 2), NodeSpec("wet", 2)]
    )
    network.add_edge("rain", "sprinkler")
    network.add_edge("rain", "wet")
    network.add_edge("sprinkler", "wet")
    return network


def rain_data(rng, count=4000):
    rows = []
    for _ in range(count):
        rain = rng.random() < 0.2
        sprinkler = rng.random() < (0.01 if rain else 0.4)
        p_wet = 0.99 if (rain and sprinkler) else 0.9 if rain else 0.85 if sprinkler else 0.02
        wet = rng.random() < p_wet
        rows.append({"rain": int(rain), "sprinkler": int(sprinkler), "wet": int(wet)})
    return rows


class TestBayesianNetwork:
    def test_node_cardinality_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("x", 1)

    def test_duplicate_node_rejected(self):
        with pytest.raises(BayesError):
            DiscreteBayesianNetwork([NodeSpec("a", 2), NodeSpec("a", 2)])

    def test_cycle_rejected(self):
        network = DiscreteBayesianNetwork([NodeSpec("a", 2), NodeSpec("b", 2)])
        network.add_edge("a", "b")
        with pytest.raises(BayesError):
            network.add_edge("b", "a")

    def test_self_loop_rejected(self):
        network = DiscreteBayesianNetwork([NodeSpec("a", 2)])
        with pytest.raises(BayesError):
            network.add_edge("a", "a")

    def test_topological_order(self):
        network = rain_network()
        order = network.topological_order()
        assert order.index("rain") < order.index("sprinkler") < order.index("wet")

    def test_cpt_rows_sum_to_one(self):
        network = rain_network()
        network.fit(rain_data(np.random.default_rng(0)))
        for node in network.node_names:
            np.testing.assert_allclose(network.cpt(node).sum(axis=1), 1.0)

    def test_joint_probabilities_sum_to_one(self):
        network = rain_network()
        network.fit(rain_data(np.random.default_rng(0)))
        total = sum(
            network.probability({"rain": r, "sprinkler": s, "wet": w})
            for r in (0, 1)
            for s in (0, 1)
            for w in (0, 1)
        )
        assert total == pytest.approx(1.0)

    def test_posterior_matches_generator(self):
        network = rain_network()
        network.fit(rain_data(np.random.default_rng(1), count=8000))
        # P(rain | wet) should be much higher than P(rain)
        prior = network.posterior({"rain": 1})
        posterior = network.posterior({"rain": 1}, {"wet": 1})
        assert prior == pytest.approx(0.2, abs=0.05)
        assert posterior > prior + 0.1

    def test_posterior_conflicting_evidence_zero(self):
        network = rain_network()
        network.fit(rain_data(np.random.default_rng(0)))
        assert network.posterior({"rain": 1}, {"rain": 0}) == 0.0

    def test_unfitted_network_raises(self):
        network = rain_network()
        with pytest.raises(BayesError):
            network.probability({"rain": 0, "sprinkler": 0, "wet": 0})

    def test_sampling_respects_distribution(self):
        network = rain_network()
        network.fit(rain_data(np.random.default_rng(2), count=8000))
        samples = network.sample(np.random.default_rng(3), count=4000)
        rain_rate = sum(s["rain"] for s in samples) / len(samples)
        assert rain_rate == pytest.approx(0.2, abs=0.04)

    def test_laplace_smoothing_keeps_positive(self):
        network = DiscreteBayesianNetwork([NodeSpec("a", 2)])
        network.fit([{"a": 0}] * 10)  # never saw a=1
        assert network.probability({"a": 1}) > 0.0

    def test_structure_learning_recovers_dependency(self):
        rng = np.random.default_rng(4)
        rows = rain_data(rng, count=3000)
        nodes = [NodeSpec("rain", 2), NodeSpec("sprinkler", 2), NodeSpec("wet", 2)]
        network = learn_structure(nodes, rows, max_parents=2)
        # wet depends strongly on rain: some edge must touch wet
        assert any("wet" in edge for edge in network.edges())

    def test_bic_penalizes_spurious_edges(self):
        rng = np.random.default_rng(5)
        rows = [
            {"a": int(rng.random() < 0.5), "b": int(rng.random() < 0.5)}
            for _ in range(2000)
        ]
        nodes = [NodeSpec("a", 2), NodeSpec("b", 2)]
        network = learn_structure(nodes, rows)
        assert network.edges() == []  # independent variables stay unlinked

    def test_remove_edge(self):
        network = rain_network()
        network.remove_edge("rain", "wet")
        assert ("rain", "wet") not in network.edges()


class TestFlagEncoding:
    def test_round_trip_all_combinations(self):
        for config in cobayn_space():
            assert assignment_to_config(flag_assignment(config)) == config

    def test_level_encoding(self):
        o2 = FlagConfiguration(OptLevel.O2)
        o3 = FlagConfiguration(OptLevel.O3)
        assert flag_assignment(o2)["level"] == 0
        assert flag_assignment(o3)["level"] == 1

    def test_flag_variables_binary(self):
        row = flag_assignment(cobayn_space()[77])
        assert set(row.values()) <= {0, 1}
        assert len(row) == 1 + len(ALL_FLAGS)


class TestDiscretizer:
    def test_selects_informative_features(self, corpus):
        discretizer = Discretizer.fit(corpus.feature_vectors(), bins=3, top_k=6)
        assert len(discretizer.feature_names) == 6
        # the selected features must actually separate the kernels
        binned = [
            tuple(discretizer.transform(vector).values())
            for vector in corpus.feature_vectors()
        ]
        assert len(set(binned)) >= 6

    def test_transform_levels_in_range(self, corpus):
        discretizer = Discretizer.fit(corpus.feature_vectors(), bins=3, top_k=8)
        for vector in corpus.feature_vectors():
            for name, level in discretizer.transform(vector).items():
                assert 0 <= level < discretizer.cardinality(name)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Discretizer.fit([])

    def test_rejects_single_bin(self, corpus):
        with pytest.raises(ValueError):
            Discretizer.fit(corpus.feature_vectors(), bins=1)


class TestCorpus:
    def test_corpus_covers_all_apps(self, corpus):
        assert len(corpus.examples) == 12

    def test_good_configs_are_actually_good(self, corpus):
        for example in corpus.examples:
            times = dict(
                (config, time) for config, time in example.timings
            )
            best_time = min(times.values())
            for config in example.good_configs:
                assert times[config] <= best_time * 1.35

    def test_timings_complete(self, corpus):
        for example in corpus.examples:
            assert len(example.timings) == 128

    def test_rows_contain_features_and_flags(self, corpus):
        discretizer = Discretizer.fit(corpus.feature_vectors(), bins=3, top_k=4)
        rows = corpus.rows(discretizer)
        assert rows
        sample = rows[0]
        assert "level" in sample
        assert any(name.startswith("ft") for name in sample)

    def test_good_fraction_validation(self, apps, compiler, executor, omp):
        with pytest.raises(ValueError):
            build_corpus(apps[:1], compiler, executor, omp, good_fraction=0.0)

    def test_prune_plans_exclude_unsafe_configs(self, compiler, executor, omp):
        """Opt-in flag-safety pruning: with a plan whose verdict marks
        fast-math unsafe, the corpus skips those 64 configurations."""
        from repro.analysis.cost import build_prune_plan
        from repro.engine.model import DesignSpace
        from repro.gcc.flags import Flag, standard_levels

        app = load("mvt")  # dot-product reductions: FPS201 fires
        space = DesignSpace(
            compiler_configs=standard_levels(), thread_counts=[1]
        )
        plan = build_prune_plan(app, space, machine=executor.machine)
        assert "UNSAFE_MATH" in plan.flag_safety.unsafe_flags
        corpus = build_corpus(
            [app], compiler, executor, omp, plans={app.name: plan}
        )
        (example,) = corpus.examples
        assert len(example.timings) == 64
        assert all(
            not config.has(Flag.UNSAFE_MATH) for config, _ in example.timings
        )
        assert example.good_configs

    def test_without_plans_the_space_is_untouched(
        self, compiler, executor, omp
    ):
        app = load("mvt")
        corpus = build_corpus([app], compiler, executor, omp, plans=None)
        (example,) = corpus.examples
        assert len(example.timings) == 128


class TestAutotuner:
    @pytest.fixture(scope="class")
    def trained(self, corpus):
        tuner = CobaynAutotuner()
        tuner.train(corpus)
        return tuner

    def test_untrained_raises(self):
        tuner = CobaynAutotuner()
        with pytest.raises(RuntimeError):
            tuner.network

    def test_train_on_empty_corpus_raises(self):
        from repro.cobayn.corpus import TrainingCorpus

        tuner = CobaynAutotuner()
        with pytest.raises(ValueError):
            tuner.train(TrainingCorpus())

    def test_prediction_returns_k_unique_configs(self, trained, two_mm):
        features = extract_features(two_mm.parse(), "kernel_2mm")
        top = trained.predict_top(features, 4)
        assert len(top) == 4
        assert len(set(top)) == 4

    def test_prediction_probabilities_descend(self, trained, two_mm):
        features = extract_features(two_mm.parse(), "kernel_2mm")
        prediction = trained.predict(features, 4)
        probabilities = [p for _, p in prediction.ranked]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_posteriors_normalize_over_space(self, trained, two_mm):
        features = extract_features(two_mm.parse(), "kernel_2mm")
        prediction = trained.predict(features, 128)
        assert sum(p for _, p in prediction.ranked) == pytest.approx(1.0, abs=1e-6)

    def test_leave_one_out_prunes_well(self, apps, compiler, executor, omp):
        """Core COBAYN claim: predicted configs sit near the true top."""
        from repro.machine.openmp import BindingPolicy
        from repro.polybench.workload import profile_kernel

        target = load("3mm")
        train = [app for app in apps if app.name != "3mm"]
        corpus = build_corpus(train, compiler, executor, omp)
        tuner = CobaynAutotuner()
        tuner.train(corpus)
        features = extract_features(target.parse(), target.kernels[0])
        predicted = tuner.predict_top(features, 4)

        placement = omp.place(16, BindingPolicy.CLOSE)
        profile = profile_kernel(target)
        truth = sorted(
            cobayn_space(),
            key=lambda config: executor.evaluate(
                compiler.compile(profile, config), placement
            ).time_s,
        )
        ranks = [truth.index(config) for config in predicted]
        assert min(ranks) < 16  # at least one prediction in the true top-12%
        assert sum(ranks) / len(ranks) < 48  # and the set beats random (mean 64)


class TestLoocvEvaluation:
    def test_report_over_three_apps(self, compiler, executor, omp):
        from repro.cobayn.evaluation import loocv_report
        from repro.polybench.suite import load

        apps = [load("mvt"), load("atax"), load("gemver")]
        report = loocv_report(apps, compiler, executor, omp, k=3)
        assert len(report.entries) == 3
        assert report.k == 3 and report.space_size == 128
        for entry in report.entries:
            assert len(entry.predicted_ranks) == 3
            assert all(0 <= rank < 128 for rank in entry.predicted_ranks)
            assert entry.speedup_vs_o3 > 0
        table = report.to_table()
        assert "mvt" in table and "random k-subset" in table
        assert report.mean_rank < report.random_baseline_mean_rank()

    def test_needs_three_apps(self, compiler, executor, omp):
        from repro.cobayn.evaluation import loocv_report
        from repro.polybench.suite import load

        with pytest.raises(ValueError):
            loocv_report([load("mvt")], compiler, executor, omp)
