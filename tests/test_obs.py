"""Tests for `repro.obs`: tracing, metrics, audit, exporters, validators.

The integration tests build a small adaptive application with
observability enabled and check the acceptance properties of the
subsystem: the span tree nests build → stage → engine evaluation, the
exported artifacts pass their own validators, every operating-point
switch in a fig5-style scenario has one explained audit entry, and a
seeded run is byte-identical with observability on or off.
"""

import json

import pytest

from repro.core.scenario import Phase, Scenario
from repro.core.toolflow import SocratesToolflow
from repro.core.trace import trace_to_csv
from repro.engine.telemetry import StageEvent, TelemetryRecorder, stage_report
from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
from repro.margot.monitor import Monitor
from repro.margot.state import (
    Constraint,
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)
from repro.obs import NULL_OBS, NULL_TRACER, Observability
from repro.obs.audit import (
    AdaptationAuditLog,
    AdaptationEntry,
    CandidateTrace,
    ConstraintTrace,
    compose_reason,
    describe_rank,
)
from repro.obs.export import (
    chrome_trace,
    events_jsonl,
    prometheus_text,
    write_audit_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.obs.tracing import Tracer
from repro.obs.validate import (
    validate_chrome_trace,
    validate_events_jsonl,
    validate_file,
    validate_prometheus_text,
)
from repro.polybench.suite import load


class FakeClock:
    """Deterministic monotonic clock for tracer tests."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nesting_parent_child(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children(outer) == [inner]
        # completion order: inner finishes first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_child_contained_in_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_s <= inner.start_s
        assert inner.end_s <= outer.end_s
        assert inner.duration_s >= 0.0

    def test_exception_marks_span_not_ok(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.ok is False

    def test_attributes_and_annotate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", kernel="2mm"):
            tracer.annotate(points=32)
        (span,) = tracer.spans
        assert span.attributes == {"kernel": "2mm", "points": 32}

    def test_annotate_outside_span_is_noop(self):
        tracer = Tracer(clock=FakeClock())
        tracer.annotate(ignored=True)
        assert tracer.spans == []

    def test_adopt_lays_out_from_parent_start(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent") as parent:
            adopted = tracer.adopt("worker", duration_s=0.25, offset_s=0.5, track="pool-0")
        assert adopted.parent_id == parent.span_id
        assert adopted.start_s == pytest.approx(parent.start_s + 0.5)
        assert adopted.end_s == pytest.approx(parent.start_s + 0.75)
        assert adopted.track == "pool-0"

    def test_find_and_clear(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        tracer.clear()
        assert tracer.spans == []

    def test_current_tracks_stack(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current is None
        with tracer.span("s") as span:
            assert tracer.current is span
        assert tracer.current is None

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("ignored", attr=1):
            NULL_TRACER.annotate(attr=2)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.adopt("w", 1.0) is None
        assert NULL_TRACER.current is None
        assert NULL_TRACER.enabled is False

    def test_null_tracer_shares_context(self):
        # the disabled fast path must not allocate per call
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0

    def test_histogram_buckets(self):
        hist = MetricsRegistry().histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # le=1.0 holds 0.5 and 1.0; le=10.0 holds 5.0; +Inf holds 100.0
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4]
        assert hist.count == 4
        assert hist.total == pytest.approx(106.5)
        assert hist.mean == pytest.approx(106.5 / 4)

    def test_histogram_rejects_bad_boundaries(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", boundaries=())
        with pytest.raises(ValueError):
            registry.histogram("bad", boundaries=(2.0, 1.0))

    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1
        assert "x" in registry

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_instruments_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert [i.name for i in registry.instruments()] == ["alpha", "zeta"]

    def test_absorb_monitor(self):
        registry = MetricsRegistry()
        monitor = Monitor("m", window_size=4)
        for value in (1.0, 2.0, 3.0):
            monitor.push(value)
        registry.absorb_monitor("power", monitor)
        assert registry.get("socrates_monitor_power_average").value == pytest.approx(2.0)
        assert registry.get("socrates_monitor_power_count").value == 3.0
        # re-absorbing is idempotent (gauges, not counters)
        registry.absorb_monitor("power", monitor)
        assert registry.get("socrates_monitor_power_count").value == 3.0

    def test_null_registry_is_inert(self):
        instrument = NULL_METRICS.counter("anything")
        instrument.inc()
        instrument.observe(1.0)
        instrument.set(5.0)
        assert instrument is NULL_METRICS.histogram("other")
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.enabled is False


def op(threads, time, power):
    return OperatingPoint(
        knobs={"threads": threads},
        metrics={
            "time": MetricStats(time),
            "power": MetricStats(power),
            "throughput": MetricStats(1.0 / time),
        },
    )


@pytest.fixture
def kb():
    return KnowledgeBase(
        [
            op(1, time=8.0, power=45.0),
            op(4, time=2.5, power=70.0),
            op(8, time=1.4, power=95.0),
            op(16, time=0.9, power=130.0),
        ]
    )


class TestAuditLog:
    def _entry(self, **overrides):
        base = dict(
            sequence=0,
            state="perf",
            rank="minimize time^1",
            considered=4,
            survivors=2,
            constraints=[],
            candidates=[
                CandidateTrace(knobs=(("threads", 8),), rank_value=1.4),
                CandidateTrace(knobs=(("threads", 4),), rank_value=2.5),
            ],
            winner={"threads": 8},
            winner_rank=1.4,
            switched_from=None,
            reason="",
        )
        base.update(overrides)
        return AdaptationEntry(**base)

    def test_record_composes_reason(self):
        log = AdaptationAuditLog()
        entry = log.record(self._entry())
        assert "initial selection under state 'perf'" in entry.reason
        assert "threads=8" in entry.reason
        assert "runner-up" in entry.reason

    def test_explicit_reason_kept(self):
        log = AdaptationAuditLog()
        entry = log.record(self._entry(reason="custom"))
        assert entry.reason == "custom"

    def test_switch_reason_names_predecessor(self):
        reason = compose_reason(self._entry(switched_from={"threads": 1}))
        assert "switched from (threads=1)" in reason

    def test_relaxed_constraint_reported(self):
        trace = ConstraintTrace(
            goal="power <= 10.0",
            adjustment=1.0,
            survivors_before=4,
            survivors_after=1,
            relaxed=True,
        )
        reason = compose_reason(self._entry(constraints=[trace]))
        assert "relaxed" in reason

    def test_stamp_last_and_sequence(self):
        log = AdaptationAuditLog()
        assert log.next_sequence() == 0
        log.record(self._entry())
        log.stamp_last(12.5)
        assert log.entries[0].timestamp == 12.5
        assert log.next_sequence() == 1

    def test_as_dicts_round_trips_json(self):
        log = AdaptationAuditLog()
        log.record(self._entry())
        (payload,) = log.as_dicts()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["winner"] == {"threads": 8}

    def test_max_candidates_validated(self):
        with pytest.raises(ValueError):
            AdaptationAuditLog(max_candidates=0)

    def test_describe_rank(self):
        assert describe_rank(maximize_throughput_per_watt_squared()) == (
            "maximize throughput^1*power^-2"
        )
        assert describe_rank(minimize_time()).startswith("minimize time")


class TestAsrtmAudit:
    def test_initial_selection_recorded(self, kb):
        audit = AdaptationAuditLog()
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        best = asrtm.update()
        (entry,) = audit.entries
        assert entry.switched_from is None
        assert entry.winner == dict(best.knobs)
        assert entry.considered == 4
        assert entry.state == "perf"

    def test_no_entry_without_switch(self, kb):
        audit = AdaptationAuditLog()
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        asrtm.update()
        asrtm.update()
        asrtm.update()
        assert len(audit) == 1  # stable selection: only the initial entry

    def test_state_switch_recorded_with_predecessor(self, kb):
        audit = AdaptationAuditLog()
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        efficiency = OptimizationState(
            "eff", rank=maximize_throughput_per_watt_squared()
        )
        asrtm.add_state(efficiency)
        first = asrtm.update()
        asrtm.switch_state("eff")
        second = asrtm.update()
        assert second.key != first.key
        assert len(audit) == 2
        entry = audit.entries[-1]
        assert entry.switched_from == dict(first.knobs)
        assert entry.state == "eff"
        assert entry.winner == dict(second.knobs)

    def test_constraint_filtering_traced(self, kb):
        audit = AdaptationAuditLog()
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        state = OptimizationState("capped", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 100.0))
        )
        asrtm.add_state(state)
        best = asrtm.update()
        assert best.knob("threads") == 8
        (entry,) = audit.entries
        (trace,) = entry.constraints
        assert trace.survivors_before == 4
        assert trace.survivors_after == 3  # 130 W excluded
        assert trace.relaxed is False

    def test_relaxation_traced(self, kb):
        audit = AdaptationAuditLog()
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        state = OptimizationState("impossible", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 10.0))
        )
        asrtm.add_state(state)
        asrtm.update()
        (entry,) = audit.entries
        assert entry.constraints[0].relaxed is True
        assert "relaxed" in entry.reason

    def test_candidates_sorted_best_first_and_capped(self, kb):
        audit = AdaptationAuditLog(max_candidates=2)
        asrtm = ApplicationRuntimeManager(kb, audit=audit)
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        asrtm.update()
        (entry,) = audit.entries
        assert len(entry.candidates) == 2
        values = [candidate.rank_value for candidate in entry.candidates]
        assert values == sorted(values)  # minimize: best (lowest) first
        assert dict(entry.candidates[0].knobs) == entry.winner

    def test_audit_off_by_default(self, kb):
        asrtm = ApplicationRuntimeManager(kb)
        assert asrtm.audit is None
        asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
        asrtm.update()  # must not blow up without an audit log


def make_spans():
    tracer = Tracer(clock=FakeClock(step=0.5))
    with tracer.span("build", app="mvt"):
        with tracer.span("stage:profile"):
            with tracer.span("engine.evaluate", points=4):
                tracer.adopt("truth:a", duration_s=0.2, offset_s=0.0, track="pool-0")
                tracer.adopt("truth:b", duration_s=0.3, offset_s=0.2, track="pool-0")
    return tracer.spans


class TestExporters:
    def test_chrome_trace_structure(self):
        document = chrome_trace(make_spans(), process_name="test")
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}
        assert len(spans) == 5
        # re-based to zero and microseconds
        assert min(e["ts"] for e in spans) == 0.0
        # main track is tid 0, the pool lane gets its own tid
        tids = {e["name"]: e["tid"] for e in spans}
        assert tids["build"] == 0
        assert tids["truth:a"] == tids["truth:b"] != 0
        # parent links preserved in args
        build = next(e for e in spans if e["name"] == "build")
        stage = next(e for e in spans if e["name"] == "stage:profile")
        assert stage["args"]["parent_id"] == build["args"]["span_id"]
        assert build["args"]["app"] == "mvt"
        assert build["args"]["ok"] is True

    def test_chrome_trace_round_trip_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(make_spans(), path)
        assert count == 5
        summary = validate_chrome_trace(path)
        assert summary["spans"] == 5

    def test_events_jsonl_stream(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        audit = AdaptationAuditLog()
        audit.record(
            AdaptationEntry(
                sequence=0,
                state="s",
                rank="minimize time^1",
                considered=1,
                survivors=1,
                constraints=[],
                candidates=[CandidateTrace(knobs=(("threads", 1),), rank_value=1.0)],
                winner={"threads": 1},
                winner_rank=1.0,
                switched_from=None,
                reason="",
            )
        )
        lines = list(events_jsonl(make_spans(), registry, audit))
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds.count("span") == 5
        assert kinds.count("metric") == 1
        assert kinds.count("adaptation") == 1
        path = tmp_path / "events.jsonl"
        assert write_jsonl(path, make_spans(), registry, audit) == 7
        assert validate_events_jsonl(path) == {
            "span": 5,
            "metric": 1,
            "adaptation": 1,
        }
        audit_path = tmp_path / "audit.jsonl"
        assert write_audit_jsonl(audit, audit_path) == 1
        assert validate_events_jsonl(audit_path) == {"adaptation": 1}

    def test_prometheus_text_validates(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("socrates_points_total", help="points").inc(7)
        registry.gauge("socrates_last_power_w").set(93.5)
        hist = registry.histogram(
            "socrates_batch_points", boundaries=DEFAULT_SIZE_BUCKETS
        )
        for value in (2, 40, 5000):
            hist.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE socrates_points_total counter" in text
        assert "socrates_points_total 7" in text
        assert 'socrates_batch_points_bucket{le="+Inf"} 3' in text
        assert "socrates_batch_points_count 3" in text
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, path)
        assert validate_prometheus_text(path)["samples"] >= 11

    def test_empty_spans_export(self):
        document = chrome_trace([])
        assert [e["ph"] for e in document["traceEvents"]] == ["M", "M"]


class TestValidators:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace(path)

    def test_rejects_missing_dur(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}]}
            )
        )
        with pytest.raises(ValueError, match="lacks 'dur'"):
            validate_chrome_trace(path)

    def test_rejects_partial_overlap(self, tmp_path):
        path = tmp_path / "bad.json"
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 50, "dur": 100, "pid": 1, "tid": 0},
        ]
        path.write_text(json.dumps({"traceEvents": events}))
        with pytest.raises(ValueError, match="must nest"):
            validate_chrome_trace(path)

    def test_accepts_sibling_spans(self, tmp_path):
        path = tmp_path / "ok.json"
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 50, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 60, "dur": 50, "pid": 1, "tid": 0},
        ]
        path.write_text(json.dumps({"traceEvents": events}))
        assert validate_chrome_trace(path)["spans"] == 2

    def test_rejects_malformed_prometheus_line(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text("metric_one 1\nnot a sample!!\n")
        with pytest.raises(ValueError, match="malformed sample line"):
            validate_prometheus_text(path)

    def test_rejects_non_cumulative_buckets(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text(
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_prometheus_text(path)

    def test_rejects_unknown_jsonl_type(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown event type"):
            validate_events_jsonl(path)

    def test_suffix_dispatch(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x")
        with pytest.raises(ValueError, match="cannot infer artifact kind"):
            validate_file(path)

    @pytest.mark.parametrize("name", ["gone.json", "gone.jsonl", "gone.prom"])
    def test_missing_file_is_a_value_error(self, tmp_path, name):
        # the CLI maps ValueError to a clean `error: ...` + exit 2
        with pytest.raises(ValueError, match="cannot read artifact"):
            validate_file(tmp_path / name)


class TestStageEventOk:
    def test_ok_defaults_true(self):
        event = StageEvent("s", 0.1, 0, 0, 0, 0, 0, 0, 0)
        assert event.ok is True

    def test_recorder_marks_failed_stage(self, compiler, executor, omp):
        from repro.engine.core import EvaluationEngine

        engine = EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
        recorder = TelemetryRecorder(engine)
        with pytest.raises(RuntimeError):
            with recorder.stage("doomed"):
                raise RuntimeError("boom")
        (event,) = recorder.events
        assert event.ok is False
        assert event.stage == "doomed"

    def test_stage_report_totals_derived_from_fields(self):
        events = [
            StageEvent("a", 1.0, 1, 2, 3, 4, 5, 6, 7),
            StageEvent("b", 2.0, 10, 20, 30, 40, 50, 60, 70, ok=False),
        ]
        report = stage_report(events)
        totals = report["totals"]
        assert totals["wall_time_s"] == pytest.approx(3.0)
        assert totals["compile_hits"] == 11
        assert totals["points_evaluated"] == 77
        assert totals["ok"] is False
        assert report["stages"][0]["ok"] is True
        assert report["stages"][1]["ok"] is False

    def test_stage_report_empty(self):
        report = stage_report([])
        assert report["totals"]["ok"] is True
        assert report["stages"] == []

    def test_failed_stage_span_not_ok(self, compiler, executor, omp):
        from repro.engine.core import EvaluationEngine

        engine = EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
        tracer = Tracer(clock=FakeClock())
        recorder = TelemetryRecorder(engine, tracer=tracer)
        with pytest.raises(RuntimeError):
            with recorder.stage("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.find("stage:doomed")
        assert span.ok is False


class TestObservabilityHandle:
    def test_enabled_bundle(self):
        obs = Observability()
        assert obs.enabled
        assert obs.tracer.enabled
        assert obs.metrics.enabled
        assert obs.audit is not None

    def test_null_obs_is_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.tracer is NULL_TRACER
        assert NULL_OBS.metrics is NULL_METRICS
        assert NULL_OBS.audit is None

    def test_absorb_engine(self, compiler, executor, omp):
        from repro.engine.core import EvaluationEngine

        obs = Observability()
        engine = EvaluationEngine(compiler=compiler, executor=executor, omp=omp)
        obs.absorb_engine(engine)
        assert obs.metrics.get("socrates_engine_compile_hits") is not None

    def test_repr(self):
        assert "enabled=False" in repr(NULL_OBS)
        assert "spans=0" in repr(Observability())


def fig5_scenario(duration_s=2.0):
    third = duration_s / 3.0
    return Scenario(
        phases=[
            Phase(0.0, "Thr/W^2"),
            Phase(third, "Throughput"),
            Phase(2 * third, "Thr/W^2"),
        ],
        duration_s=duration_s,
    )


def build_mvt(obs=None):
    flow = SocratesToolflow(dse_repetitions=1, thread_counts=[1, 2], obs=obs)
    result = flow.build(load("mvt"))
    app = result.adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    return flow, result, app


@pytest.fixture(scope="module")
def traced_build():
    """A small obs-enabled build plus a fig5-style scenario run."""
    obs = Observability()
    flow, result, app = build_mvt(obs=obs)
    records = fig5_scenario().run(app)
    obs.absorb_engine(flow.engine)
    obs.absorb_monitors(app.manager.monitors)
    return obs, result, records


class TestToolflowIntegration:
    def test_span_tree_nests_build_stage_engine(self, traced_build):
        obs, _, _ = traced_build
        tracer = obs.tracer
        by_id = {span.span_id: span for span in tracer.spans}

        def ancestors(span):
            names = []
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                names.append(span.name)
            return names

        (build,) = tracer.find("build:mvt")
        assert build.parent_id is None
        stages = [s for s in tracer.spans if s.name.startswith("stage:")]
        assert {s.name for s in stages} >= {
            "stage:characterize",
            "stage:prune",
            "stage:weave",
            "stage:profile",
            "stage:assemble",
        }
        assert all(s.parent_id == build.span_id for s in stages)
        evaluates = tracer.find("engine.evaluate")
        assert evaluates
        assert all("build:mvt" in ancestors(e) for e in evaluates)
        assert any("dse.explore" in ancestors(e) for e in evaluates)

    def test_mapek_iteration_spans(self, traced_build):
        obs, _, records = traced_build
        iterations = obs.tracer.find("mapek.iteration")
        assert len(iterations) == len(records)
        (sample,) = obs.tracer.find("scenario.run")
        children = {s.name for s in obs.tracer.children(iterations[0])}
        assert children == {"margot.update", "kernel.execute", "monitor.observe"}

    def test_stage_events_all_ok(self, traced_build):
        _, result, _ = traced_build
        report = result.stage_report()
        assert report["totals"]["ok"] is True
        assert all(stage["ok"] for stage in report["stages"])

    def test_one_audit_entry_per_op_switch(self, traced_build):
        obs, _, records = traced_build
        switches = sum(
            1
            for before, after in zip(records, records[1:])
            if (before.compiler, before.threads, before.binding)
            != (after.compiler, after.threads, after.binding)
        )
        assert len(obs.audit) == switches + 1  # + the initial selection
        assert all(entry.reason for entry in obs.audit.entries)
        assert obs.audit.entries[0].switched_from is None

    def test_audit_entries_stamped_with_virtual_time(self, traced_build):
        obs, _, _ = traced_build
        stamps = [entry.timestamp for entry in obs.audit.entries]
        assert all(stamp is not None for stamp in stamps)
        assert stamps == sorted(stamps)

    def test_engine_metrics_absorbed(self, traced_build):
        obs, _, _ = traced_build
        assert obs.metrics.get("socrates_engine_points_evaluated").value > 0
        assert obs.metrics.get("socrates_monitor_power_count") is not None
        points = obs.metrics.get("socrates_engine_points_evaluated_total")
        assert points.value > 0

    def test_real_build_artifacts_validate(self, traced_build, tmp_path):
        obs, _, _ = traced_build
        trace_path = tmp_path / "trace.json"
        write_chrome_trace(obs.tracer.spans, trace_path)
        assert validate_chrome_trace(trace_path)["spans"] == len(obs.tracer.spans)
        prom_path = tmp_path / "metrics.prom"
        write_prometheus(obs.metrics, prom_path)
        assert validate_prometheus_text(prom_path)["samples"] > 0
        jsonl_path = tmp_path / "events.jsonl"
        write_jsonl(jsonl_path, obs.tracer.spans, obs.metrics, obs.audit)
        counts = validate_events_jsonl(jsonl_path)
        assert counts["adaptation"] == len(obs.audit)


class TestDeterminism:
    def test_seeded_run_identical_with_obs_on_and_off(self, tmp_path):
        """Instrumentation must never perturb the simulated run."""
        _, _, app_traced = build_mvt(obs=Observability())
        _, _, app_plain = build_mvt(obs=None)
        records_traced = fig5_scenario().run(app_traced)
        records_plain = fig5_scenario().run(app_plain)
        traced_csv = tmp_path / "traced.csv"
        plain_csv = tmp_path / "plain.csv"
        trace_to_csv(records_traced, traced_csv)
        trace_to_csv(records_plain, plain_csv)
        assert traced_csv.read_bytes() == plain_csv.read_bytes()

    def test_knowledge_base_identical(self):
        _, traced, _ = build_mvt(obs=Observability())
        _, plain, _ = build_mvt(obs=None)
        traced_ops = {
            point.key: {m: (s.mean, s.std) for m, s in point.metrics.items()}
            for point in traced.exploration.knowledge
        }
        plain_ops = {
            point.key: {m: (s.mean, s.std) for m, s in point.metrics.items()}
            for point in plain.exploration.knowledge
        }
        assert traced_ops == plain_ops


class TestExemplars:
    """OpenMetrics exemplars: histogram buckets carry the span id of a
    landing observation, survive the text format, and parse back."""

    def test_observe_with_exemplar_lands_in_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=[0.1, 1.0])
        histogram.observe(0.05, exemplar={"span_id": "7"})
        histogram.observe(0.5)  # no exemplar: bucket slot stays None
        exemplars = [e for e in histogram.exemplars if e is not None]
        assert len(exemplars) == 1
        labels, value = exemplars[0]
        assert dict(labels) == {"span_id": "7"}
        assert value == 0.05

    def test_text_format_appends_openmetrics_suffix(self):
        from repro.obs.export import prometheus_text

        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=[0.1, 1.0])
        histogram.observe(0.05, exemplar={"span_id": "7"})
        text = prometheus_text(registry)
        (line,) = [l for l in text.splitlines() if 'le="0.1"' in l]
        assert line.endswith('# {span_id="7"} 0.05')

    def test_round_trip_through_parse(self):
        from repro.obs.export import parse_prometheus_text, prometheus_text

        registry = MetricsRegistry()
        histogram = registry.histogram(
            "socrates_stage_duration_seconds",
            help="wall time of each pipeline stage",
            labels={"stage": "weave"},
        )
        histogram.observe(0.004, exemplar={"span_id": "12"})
        histogram.observe(9.0, exemplar={"span_id": "40"})
        text = prometheus_text(registry)
        parsed = parse_prometheus_text(text)
        assert prometheus_text(parsed) == text  # fixed point
        clone = parsed.histogram(
            "socrates_stage_duration_seconds",
            help="wall time of each pipeline stage",
            labels={"stage": "weave"},
        )
        kept = [e for e in clone.exemplars if e is not None]
        assert [dict(labels) for labels, _ in kept] == [
            {"span_id": "12"},
            {"span_id": "40"},
        ]

    def test_exemplar_on_counter_rejected_by_parser(self):
        from repro.obs.export import parse_prometheus_text

        with pytest.raises(ValueError, match="non-histogram"):
            parse_prometheus_text('builds_total 3 # {span_id="1"} 3\n')

    def test_inf_bucket_exemplar_round_trips(self):
        """Regression: an exemplar landing on the final cumulative
        (+Inf) bucket must survive text export and parse intact."""
        from repro.obs.export import parse_prometheus_text, prometheus_text

        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=[0.1, 1.0])
        histogram.observe(50.0, exemplar={"span_id": "99"})
        text = prometheus_text(registry)
        (line,) = [l for l in text.splitlines() if 'le="+Inf"' in l]
        assert line.endswith('# {span_id="99"} 50')
        parsed = parse_prometheus_text(text)
        assert prometheus_text(parsed) == text  # fixed point
        clone = parsed.histogram("h", boundaries=[0.1, 1.0])
        # the overflow slot is the LAST one, after every finite bucket
        assert clone.exemplars[:2] == [None, None]
        labels, value = clone.exemplars[2]
        assert dict(labels) == {"span_id": "99"}
        assert value == 50.0

    def test_inf_bucket_exemplar_in_labeled_family(self):
        """One series' +Inf exemplar must not leak into its siblings."""
        from repro.obs.export import parse_prometheus_text, prometheus_text

        registry = MetricsRegistry()
        hot = registry.histogram("fam", boundaries=[1.0], labels={"k": "a"})
        cold = registry.histogram("fam", boundaries=[1.0], labels={"k": "b"})
        hot.observe(5.0, exemplar={"span_id": "2"})
        cold.observe(0.5, exemplar={"span_id": "3"})
        text = prometheus_text(registry)
        parsed = parse_prometheus_text(text)
        assert prometheus_text(parsed) == text
        clone_hot = parsed.histogram("fam", boundaries=[1.0], labels={"k": "a"})
        clone_cold = parsed.histogram("fam", boundaries=[1.0], labels={"k": "b"})
        assert clone_hot.exemplars == [None, ((("span_id", "2"),), 5.0)]
        assert clone_cold.exemplars == [((("span_id", "3"),), 0.5), None]

    def test_foreign_inf_spelling_is_overflow_not_boundary(self):
        """Regression: the text format admits any float spelling of
        +Inf; a lowercase ``le="+inf"`` bucket must parse as the
        overflow slot, not become a finite boundary (which would also
        shift the exemplar index)."""
        from repro.obs.export import parse_prometheus_text

        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 0\n'
            'h_bucket{le="+inf"} 1 # {span_id="7"} 4\n'
            "h_sum 4\n"
            "h_count 1\n"
        )
        parsed = parse_prometheus_text(text)
        clone = parsed.histogram("h", boundaries=[1.0])
        assert list(clone.boundaries) == [1.0]  # no rogue inf boundary
        assert clone.exemplars == [None, ((("span_id", "7"),), 4.0)]

    def test_stage_histogram_links_to_real_spans(self, traced_build):
        from repro.obs.export import parse_prometheus_text, prometheus_text

        obs, _, _ = traced_build
        span_ids = {
            str(span.span_id): span.name
            for span in obs.tracer.spans
            if span.name.startswith("stage:")
        }
        parsed = parse_prometheus_text(prometheus_text(obs.metrics))
        linked = 0
        for instrument in parsed.instruments():
            if instrument.name != "socrates_stage_duration_seconds":
                continue
            stage = dict(instrument.labels)["stage"]
            for entry in instrument.exemplars:
                if entry is None:
                    continue
                labels, _ = entry
                span_id = dict(labels)["span_id"]
                assert span_ids[span_id] == f"stage:{stage}"
                linked += 1
        assert linked > 0
