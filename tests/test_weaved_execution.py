"""End-to-end execution of the weaved application + generated margot.h.

The strongest validation loop in the repository: the *woven C source*
(clones, wrapper, mARGOt calls) and the *generated adaptation header*
(operating-point tables, constraint filter, rank loop) are executed
together by the CIR interpreter, and the result is checked against
both the numpy reference (functional equivalence) and the Python
AS-RTM (selection equivalence).
"""

import numpy as np
import pytest

from repro.cir import parse
from repro.cir.interp import Interpreter
from repro.margot.asrtm import ApplicationRuntimeManager
from repro.margot.config import load_config
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import (
    Constraint,
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)
from repro.polybench.suite import load


@pytest.fixture(scope="module")
def built_mvt(toolflow):
    return toolflow.build(load("mvt"))


def _states():
    return load_config(
        {
            "kernel": "mvt",
            "states": [
                {
                    "name": "performance",
                    "rank": {
                        "direction": "maximize",
                        "fields": [{"metric": "throughput"}],
                    },
                },
                {
                    "name": "efficiency",
                    "rank": {
                        "direction": "maximize",
                        "composition": "geometric",
                        "fields": [
                            {"metric": "throughput", "coefficient": 1.0},
                            {"metric": "power", "coefficient": -2.0},
                        ],
                    },
                },
                {
                    "name": "budget",
                    "rank": {
                        "direction": "minimize",
                        "fields": [{"metric": "time"}],
                    },
                    "constraints": [
                        {"metric": "power", "comparison": "le", "value": 90.0}
                    ],
                },
            ],
        }
    ).states


def _interpreter(built, states, n=8):
    header_unit = parse(built.margot_header(states), name="margot.h")
    return Interpreter([header_unit, built.weaver.unit], macro_overrides={"N": n})


def _python_choice(built, state):
    asrtm = ApplicationRuntimeManager(built.exploration.knowledge)
    asrtm.add_state(state)
    best = asrtm.update()
    version = built.adaptive._versions[
        (str(best.knob("compiler")), str(best.knob("binding")))
    ].index
    return version, int(best.knob("threads"))


class TestWeavedExecution:
    def test_main_runs_and_dispatches(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        assert interp.run_main() == 0
        # margot_log was reached: the weaved sequence executed fully
        assert any("margot op=" in line for line in interp.stderr)

    def test_functional_equivalence_with_reference(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        interp.run_main()
        n = 8
        a = np.fromfunction(lambda i, j: (i * j % n) / n, (n, n))
        x1_0 = np.fromfunction(lambda i: (i % n) / n, (n,))
        x2_0 = np.fromfunction(lambda i: ((i + 1) % n) / n, (n,))
        y1 = np.fromfunction(lambda i: ((i + 3) % n) / n, (n,))
        y2 = np.fromfunction(lambda i: ((i + 4) % n) / n, (n,))
        np.testing.assert_allclose(interp.global_value("x1"), x1_0 + a @ y1)
        np.testing.assert_allclose(interp.global_value("x2"), x2_0 + a.T @ y2)

    def test_c_selection_matches_python_asrtm_performance(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        interp.run_main()  # state 0 = performance
        version, threads = _python_choice(
            built_mvt, OptimizationState("p", rank=maximize_throughput())
        )
        assert interp.global_value("__socrates_version") == version
        assert interp.global_value("__socrates_num_threads") == threads

    def test_c_selection_matches_python_asrtm_efficiency(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        interp.call("margot_init")
        interp.call("margot_switch_state", 1)  # efficiency
        from repro.cir.interp import make_cell

        version_cell, threads_cell = make_cell(0), make_cell(0)
        interp.call("margot_update", version_cell, threads_cell)
        expected_version, expected_threads = _python_choice(
            built_mvt,
            OptimizationState("e", rank=maximize_throughput_per_watt_squared()),
        )
        assert version_cell.get() == expected_version
        assert threads_cell.get() == expected_threads

    def test_c_constraint_filter_matches_python(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        interp.call("margot_init")
        interp.call("margot_switch_state", 2)  # budget <= 90 W
        from repro.cir.interp import make_cell

        version_cell, threads_cell = make_cell(0), make_cell(0)
        interp.call("margot_update", version_cell, threads_cell)

        state = OptimizationState("b", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 90.0))
        )
        expected_version, expected_threads = _python_choice(built_mvt, state)
        assert version_cell.get() == expected_version
        assert threads_cell.get() == expected_threads

    def test_switch_state_out_of_range_ignored(self, built_mvt):
        states = _states()
        interp = _interpreter(built_mvt, states)
        interp.call("margot_init")
        interp.call("margot_switch_state", 99)
        assert interp.global_value("margot_active_state") == 0

    def test_wrapper_dispatches_to_selected_clone(self, built_mvt):
        """Force each version in turn: every clone computes the same
        result (the knobs only change extra-functional behaviour)."""
        states = _states()
        results = []
        for version_index in (0, 7, 15):
            interp = _interpreter(built_mvt, states, n=6)
            interp.call("init_array", 6)
            interp.set_global("__socrates_version", version_index)
            interp.call("kernel_mvt__wrapper", 6)
            results.append(np.array(interp.global_value("x1"), copy=True))
        np.testing.assert_allclose(results[0], results[1])
        np.testing.assert_allclose(results[0], results[2])


class TestCRelaxationFallback:
    def test_infeasible_budget_matches_python_relaxation(self, built_mvt):
        """With an impossible 10 W budget the generated C falls back to
        the minimum-violation operating point, like the Python AS-RTM."""
        states = load_config(
            {
                "kernel": "mvt",
                "states": [
                    {
                        "name": "impossible",
                        "rank": {
                            "direction": "minimize",
                            "fields": [{"metric": "time"}],
                        },
                        "constraints": [
                            {"metric": "power", "comparison": "le", "value": 10.0}
                        ],
                    }
                ],
            }
        ).states
        interp = _interpreter(built_mvt, states)
        interp.call("margot_init")
        from repro.cir.interp import make_cell

        version_cell, threads_cell = make_cell(0), make_cell(0)
        interp.call("margot_update", version_cell, threads_cell)

        state = OptimizationState("i", rank=minimize_time())
        state.add_constraint(
            Constraint(Goal("power", ComparisonFunction.LESS_OR_EQUAL, 10.0))
        )
        expected_version, expected_threads = _python_choice(built_mvt, state)
        assert version_cell.get() == expected_version
        assert threads_cell.get() == expected_threads


class TestWeavedExecutionAcrossApps:
    """Weave more benchmarks and execute them with stubbed mARGOt calls:
    the weaved program must compute exactly what the original computes,
    for every dispatched version."""

    @pytest.mark.parametrize(
        "name,result_global,tiny",
        [
            ("2mm", "D", {"NI": 6, "NJ": 7, "NK": 8, "NL": 9}),
            ("atax", "y", {"M": 6, "N": 8}),
            ("syrk", "C", {"M": 5, "N": 6}),
            ("jacobi-2d", "A", {"N": 6, "TSTEPS": 2}),
        ],
    )
    def test_weaved_equals_original(self, name, result_global, tiny):
        from repro.gcc.flags import standard_levels
        from repro.lara.metrics import weave_benchmark

        app = load(name)
        # original execution
        original = Interpreter(app.parse(), macro_overrides=tiny)
        original.run_main()
        expected = np.array(original.global_value(result_global), copy=True)

        _, weaver = weave_benchmark(app, standard_levels())
        for version in (0, 3, 7):
            stubs = {
                "margot_init": lambda: None,
                "margot_update": lambda v, t, _version=version: (
                    v.set(_version),
                    t.set(1),
                ),
                "margot_start_monitor": lambda: None,
                "margot_stop_monitor": lambda: None,
                "margot_log": lambda: None,
            }
            interp = Interpreter(
                weaver.unit, macro_overrides=tiny, intrinsics=stubs
            )
            interp.run_main()
            computed = np.array(interp.global_value(result_global), copy=True)
            np.testing.assert_allclose(
                computed, expected, err_msg=f"{name} version {version} diverges"
            )
