"""End-to-end soundness of statically pruned design-space exploration.

The PR-level contract: for every registry app, exploring the standard
256-point lattice with the static prune plan produces a seeded Pareto
front *bit-identical* to the unpruned one — same knob keys, same
metric means and standard deviations — while the engine evaluates
fewer points (at least 25% fewer on several apps), and every masked
point leaves exactly one audit record.
"""

import pytest

from repro.analysis.cost import build_prune_plan
from repro.dse.explorer import DesignSpaceExplorer
from repro.dse.pareto import pareto_front
from repro.engine.core import EvaluationEngine
from repro.engine.model import DesignSpace
from repro.gcc.flags import standard_levels
from repro.obs import Observability
from repro.polybench.suite import BENCHMARK_NAMES, load

_SEED = 0xD5E
_REPS = 3
_OBJECTIVES = [("throughput", True), ("power", False)]


def _space(machine):
    return DesignSpace(
        compiler_configs=standard_levels(),
        thread_counts=list(range(1, machine.logical_cpus + 1)),
    )


def _front_key(front):
    return [
        (
            tuple(sorted(op.knobs.items())),
            tuple(
                (name, stats.mean, stats.std)
                for name, stats in sorted(op.metrics.items())
            ),
        )
        for op in front
    ]


def _explore(app, plan):
    """One exploration in a fresh engine (its own seeded noise stream)."""
    obs = Observability()
    engine = EvaluationEngine(obs=obs)
    explorer = DesignSpaceExplorer(
        engine.compiler,
        engine.executor,
        engine.omp,
        repetitions=_REPS,
        engine=engine,
    )
    profile = engine.profile(app)
    result = explorer.explore(profile, _space(engine.machine), seed=_SEED, prune_plan=plan)
    return engine, obs, result, pareto_front(result.knowledge, _OBJECTIVES)


@pytest.fixture(scope="module")
def outcomes():
    """Full-vs-pruned exploration of every registry app, computed once."""
    computed = {}
    for name in BENCHMARK_NAMES:
        app = load(name)
        full_engine, _, full, full_front = _explore(app, None)
        plan = build_prune_plan(
            app, _space(full_engine.machine), machine=full_engine.machine
        )
        engine, obs, pruned, pruned_front = _explore(app, plan)
        computed[name] = {
            "plan": plan,
            "full_front": _front_key(full_front),
            "pruned_front": _front_key(pruned_front),
            "full_counters": full_engine.counters,
            "counters": engine.counters,
            "pruned_points": pruned.pruned_points,
            "space_size": pruned.space_size,
            "prune_traces": obs.audit.prunes if obs.audit is not None else [],
        }
    return computed


class TestFrontSoundness:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_pruned_front_is_bit_identical(self, outcomes, name):
        outcome = outcomes[name]
        assert outcome["pruned_front"] == outcome["full_front"]
        assert outcome["pruned_front"]  # a front exists at all

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_masked_points_are_skipped_not_reshuffled(self, outcomes, name):
        outcome = outcomes[name]
        counters = outcome["counters"]
        assert counters.points_masked == outcome["pruned_points"]
        assert (
            counters.points_evaluated + counters.points_masked
            == outcome["space_size"]
        )
        assert outcome["full_counters"].points_evaluated == outcome["space_size"]
        assert outcome["full_counters"].points_masked == 0


class TestSavings:
    def test_at_least_three_apps_save_a_quarter_of_the_lattice(self, outcomes):
        savings = {
            name: outcome["pruned_points"] / outcome["space_size"]
            for name, outcome in outcomes.items()
        }
        big = [name for name, fraction in savings.items() if fraction >= 0.25]
        assert len(big) >= 3, savings

    def test_untrusted_oracle_never_masks(self, outcomes):
        # nussinov's loop bounds are data-dependent: the oracle is
        # untrusted there and the plan must stay empty rather than risk
        # an unsound mask
        outcome = outcomes["nussinov"]
        assert not outcome["plan"].trusted
        assert outcome["pruned_points"] == 0


class TestAuditTrail:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_one_audit_record_per_masked_point(self, outcomes, name):
        outcome = outcomes[name]
        traces = outcome["prune_traces"]
        assert len(traces) == outcome["pruned_points"]
        keys = {trace.point for trace in traces}
        assert keys == set(outcome["plan"].masked)
        for trace in traces:
            assert trace.rule == "COST001"
            assert trace.dominated_by
            assert trace.predicted_time_s > 0
            assert trace.predicted_power_w > 0
