"""Tests for the topology-generic machine model: the cluster registry,
per-cluster DVFS, cluster-aware placement, the heterogeneous executor
model, and the cluster knob threaded through the runtime layers."""

import pytest

from repro.gcc.flags import FlagConfiguration, OptLevel
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.power import cluster_domain
from repro.machine.registry import (
    DEFAULT_MACHINE,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.machine.topology import Cluster, ClusterPower, Machine, default_machine
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


@pytest.fixture(scope="module")
def biglittle():
    return get_machine("biglittle_4p4e")


@pytest.fixture(scope="module")
def bl_omp(biglittle):
    return OpenMPRuntime(biglittle)


@pytest.fixture(scope="module")
def bl_executor(biglittle):
    return MachineExecutor(biglittle)


@pytest.fixture(scope="module")
def k2mm(compiler):
    return compiler.compile(profile_kernel(load("2mm")), FlagConfiguration(OptLevel.O3))


class TestRegistry:
    def test_default_machine_is_registered_xeon(self):
        assert DEFAULT_MACHINE in machine_names()
        assert default_machine() == get_machine(DEFAULT_MACHINE)

    def test_known_machines(self):
        for expected in ("xeon_2s", "xeon_1s", "biglittle_4p4e", "biglittle_8p8e"):
            assert expected in machine_names()

    def test_unknown_machine_names_the_candidates(self):
        with pytest.raises(ValueError, match="xeon_2s"):
            get_machine("cray_1")

    def test_resolve_machine(self, biglittle):
        assert resolve_machine(None) == default_machine()
        assert resolve_machine("biglittle_4p4e") == biglittle
        assert resolve_machine(biglittle) is biglittle

    def test_xeon_is_homogeneous_biglittle_is_not(self, biglittle):
        assert get_machine("xeon_2s").is_homogeneous
        assert not biglittle.is_homogeneous
        assert biglittle.cluster_names() == ("P", "E")


class TestPlaceEnumeration:
    """Place ids derive from the enumerated place list, never from the
    old ``socket * 10_000 + core`` arithmetic."""

    @pytest.mark.parametrize("name", sorted(machine_names()))
    def test_place_ids_collision_free(self, name):
        machine = get_machine(name)
        cpus = machine.cpus()
        place_ids = {(cpu.socket, cpu.core): cpu.place_id for cpu in cpus}
        assert len(set(place_ids.values())) == machine.physical_cores
        assert set(place_ids.values()) == set(range(machine.physical_cores))

    @pytest.mark.parametrize("name", sorted(machine_names()))
    def test_cpu_ordering_is_socket_major(self, name):
        machine = get_machine(name)
        cpus = machine.cpus()
        assert len(cpus) == machine.logical_cpus
        coords = [(cpu.socket, cpu.core, cpu.hw_thread) for cpu in cpus]
        assert coords == sorted(coords)
        # place ids follow the same enumeration order
        core_ids = [cpu.place_id for cpu in cpus if cpu.hw_thread == 0]
        assert core_ids == sorted(core_ids)

    def test_asymmetric_core_counts_stay_collision_free(self):
        lop = Cluster(name="big", cores=6, threads_per_core=1)
        lil = Cluster(name="little", cores=2, threads_per_core=1)
        machine = Machine((lop, lil, lil))
        places = machine.core_places()
        assert len(places) == 10
        ids = [machine.place_id(socket, core) for socket, core in places]
        assert ids == list(range(10))

    def test_place_id_matches_place_list(self, biglittle):
        for index, (socket, core) in enumerate(biglittle.core_places()):
            assert biglittle.place_id(socket, core) == index


class TestClusterDvfs:
    def test_single_core_gets_top_state(self, biglittle):
        p = biglittle.cluster(0)
        assert p.effective_frequency(1) == p.dvfs_states[-1]

    def test_full_cluster_gets_bottom_state(self, biglittle):
        p = biglittle.cluster(0)
        assert p.effective_frequency(p.cores) == p.dvfs_states[0]

    def test_frequency_monotone_nonincreasing(self, biglittle):
        for cluster in biglittle.clusters:
            freqs = [
                cluster.effective_frequency(n) for n in range(1, cluster.cores + 1)
            ]
            assert freqs == sorted(freqs, reverse=True)
            assert all(f in cluster.dvfs_states for f in freqs)

    def test_interpolation_snaps_down_to_available_state(self):
        cluster = Cluster(
            name="p",
            cores=4,
            threads_per_core=1,
            frequency_hz=3.0e9,
            dvfs_states=(1.0e9, 3.0e9),
        )
        # 2 busy cores target 3.0 - (1/3) * 2.0 GHz ~ 2.33 GHz, which is
        # not an available state: the governor snaps DOWN to 1.0 GHz
        assert cluster.effective_frequency(2) == 1.0e9

    def test_no_dvfs_table_means_fixed_nominal_clock(self):
        xeon = get_machine("xeon_2s").cluster(0)
        assert xeon.dvfs_states == ()
        for cores in (1, 4, 8):
            assert xeon.effective_frequency(cores) == xeon.frequency_hz
        assert xeon.freq_power_factor(8) == 1.0

    def test_power_factor_tracks_frequency(self, biglittle):
        p = biglittle.cluster(0)
        assert p.freq_power_factor(1) == pytest.approx(
            (p.dvfs_states[-1] / p.frequency_hz) ** p.power.power_exponent
        )
        assert p.freq_power_factor(p.cores) < p.freq_power_factor(1)

    def test_unsorted_dvfs_table_rejected(self):
        with pytest.raises(ValueError, match="sorted ascending"):
            Cluster(name="bad", dvfs_states=(2.0e9, 1.0e9))


class TestClusterPlacement:
    def test_max_threads_per_cluster(self, bl_omp):
        assert bl_omp.max_threads() == 8
        assert bl_omp.max_threads("P") == 4
        assert bl_omp.max_threads("E") == 4

    def test_pinned_team_stays_on_its_cluster(self, bl_omp, biglittle):
        for name in biglittle.cluster_names():
            sockets = set(biglittle.cluster_sockets(name))
            for policy in (BindingPolicy.CLOSE, BindingPolicy.SPREAD):
                placement = bl_omp.place(4, policy, cluster=name)
                assert set(placement.sockets_used) <= sockets
                assert placement.cluster == name

    def test_pinned_team_respects_cluster_capacity(self, bl_omp):
        with pytest.raises(ValueError, match="cluster 'P'"):
            bl_omp.place(5, BindingPolicy.CLOSE, cluster="P")

    def test_unpinned_team_straddles_the_cluster_boundary(self, bl_omp):
        placement = bl_omp.place(8, BindingPolicy.CLOSE)
        assert set(placement.sockets_used) == {0, 1}
        assert placement.threads_per_socket() == {0: 4, 1: 4}

    def test_close_fills_p_cluster_first(self, bl_omp):
        placement = bl_omp.place(4, BindingPolicy.CLOSE)
        assert placement.sockets_used == (0,)

    def test_unknown_cluster_raises(self, bl_omp):
        with pytest.raises(ValueError, match="no cluster named"):
            bl_omp.place(2, BindingPolicy.CLOSE, cluster="M")


class TestHeterogeneousExecutor:
    def _run(self, bl_executor, bl_omp, kernel, threads, cluster):
        placement = bl_omp.place(threads, BindingPolicy.CLOSE, cluster=cluster)
        return bl_executor.run(kernel, placement, noisy=False)

    def test_p_cluster_faster_and_hotter_than_e(
        self, bl_executor, bl_omp, k2mm
    ):
        on_p = self._run(bl_executor, bl_omp, k2mm, 4, "P")
        on_e = self._run(bl_executor, bl_omp, k2mm, 4, "E")
        assert on_p.time_s < on_e.time_s
        assert on_p.power_w > on_e.power_w

    def test_straddling_team_beats_either_cluster_alone(
        self, bl_executor, bl_omp, k2mm
    ):
        on_p = self._run(bl_executor, bl_omp, k2mm, 4, "P")
        both = self._run(bl_executor, bl_omp, k2mm, 8, None)
        assert both.time_s < on_p.time_s

    def test_breakdown_matches_scalar_power(self, bl_executor, bl_omp, k2mm):
        for threads, cluster in ((4, "P"), (4, "E"), (8, None)):
            placement = bl_omp.place(threads, BindingPolicy.CLOSE, cluster=cluster)
            result = bl_executor.run(k2mm, placement, noisy=False)
            breakdown = bl_executor.breakdown(k2mm, placement)
            assert breakdown.package_w == pytest.approx(result.power_w, abs=1e-9)

    def test_cluster_planes_conserve(self, bl_executor, bl_omp, k2mm):
        placement = bl_omp.place(8, BindingPolicy.CLOSE)
        breakdown = bl_executor.breakdown(k2mm, placement)
        planes = breakdown.cluster_totals()
        for name in breakdown.cluster_names():
            components = sum(
                planes[cluster_domain(name, domain)]
                for domain in ("core", "uncore", "dram")
            )
            assert components == pytest.approx(
                planes[cluster_domain(name, "package")], abs=1e-9
            )
        cluster_packages = sum(
            planes[cluster_domain(name, "package")]
            for name in breakdown.cluster_names()
        )
        assert cluster_packages == pytest.approx(breakdown.package_w, abs=1e-9)

    def test_idle_cluster_planes_conserve(self, bl_executor):
        breakdown = bl_executor.idle_breakdown()
        planes = breakdown.cluster_totals()
        totals = breakdown.totals()
        cluster_packages = sum(
            planes[cluster_domain(name, "package")]
            for name in breakdown.cluster_names()
        )
        assert cluster_packages == pytest.approx(totals["package"], abs=1e-9)

    def test_turbo_model_rejected_on_heterogeneous_machine(
        self, biglittle, bl_omp, k2mm
    ):
        from repro.machine.dvfs import TurboModel

        executor = MachineExecutor(biglittle, turbo=TurboModel())
        placement = bl_omp.place(4, BindingPolicy.CLOSE, cluster="P")
        with pytest.raises(ValueError, match="homogeneous"):
            executor.run(k2mm, placement, noisy=False)

    def test_homogeneous_accessors_raise_on_biglittle(self, biglittle):
        # both clusters happen to have 4 cores, so the core count is
        # uniform — but the clocks and cache sizes genuinely differ
        assert biglittle.cores_per_socket == 4
        with pytest.raises(ValueError, match="heterogeneous"):
            biglittle.frequency_hz
        with pytest.raises(ValueError, match="heterogeneous"):
            biglittle.llc_bytes_per_socket


class TestClusterKnobRuntime:
    def test_version_key_shapes(self):
        from repro.core.adaptive import version_key

        assert version_key("-O3", "close") == ("-O3", "close")
        assert version_key("-O3", "close", "P") == ("-O3", "close", "P")

    def test_asrtm_knob_filter_selects_cluster(self):
        from repro.margot.asrtm import ApplicationRuntimeManager, AsrtmError
        from repro.margot.knowledge import KnowledgeBase, MetricStats, OperatingPoint
        from repro.margot.state import OptimizationState, maximize_throughput

        def op(cluster, threads, time, power):
            return OperatingPoint(
                knobs={"cluster": cluster, "threads": threads},
                metrics={
                    "time": MetricStats(time),
                    "power": MetricStats(power),
                    "throughput": MetricStats(1.0 / time),
                },
            )

        kb = KnowledgeBase(
            [op("P", 4, 1.0, 25.0), op("E", 4, 2.0, 18.0), op("P", 1, 3.0, 14.0)]
        )
        asrtm = ApplicationRuntimeManager(kb)
        asrtm.add_state(
            OptimizationState("perf", rank=maximize_throughput()), activate=True
        )
        assert asrtm.update().knob("cluster") == "P"
        asrtm.set_knob_filter("cluster", "E")
        assert asrtm.knob_filters() == {"cluster": "E"}
        assert asrtm.update().knob("cluster") == "E"
        asrtm.set_knob_filter("cluster", "M")
        with pytest.raises(AsrtmError, match="match no operating point"):
            asrtm.update()
        asrtm.clear_knob_filters()
        assert asrtm.update().knob("cluster") == "P"

    def test_trace_round_trips_cluster_column(self, tmp_path):
        from repro.core.adaptive import InvocationRecord
        from repro.core.trace import trace_from_csv, trace_to_csv

        records = [
            InvocationRecord(
                timestamp=0.1,
                state="perf",
                compiler="-O3",
                threads=4,
                binding="close",
                time_s=0.1,
                power_w=24.0,
                energy_j=2.4,
                cluster="P",
            )
        ]
        path = tmp_path / "trace.csv"
        trace_to_csv(records, path)
        header = path.read_text().splitlines()[0]
        assert header.endswith(",cluster")
        assert trace_from_csv(path) == records

    def test_homogeneous_trace_has_no_cluster_column(self, tmp_path):
        from repro.core.adaptive import InvocationRecord
        from repro.core.trace import trace_to_csv

        records = [
            InvocationRecord(
                timestamp=0.1,
                state="perf",
                compiler="-O3",
                threads=4,
                binding="close",
                time_s=0.1,
                power_w=24.0,
                energy_j=2.4,
            )
        ]
        path = tmp_path / "trace.csv"
        trace_to_csv(records, path)
        assert "cluster" not in path.read_text()

    def test_design_space_cluster_capacities(self):
        from repro.dse.explorer import DesignSpace
        from repro.gcc.flags import standard_levels

        space = DesignSpace(
            compiler_configs=standard_levels(),
            thread_counts=[1, 4, 8],
            clusters=("P", "E"),
            cluster_capacities={"P": 4, "E": 4},
        )
        points = space.points()
        assert len(points) == space.size
        assert all(point.cluster in ("P", "E") for point in points)
        # threads=8 exceeds both capacities and must be filtered out
        assert all(point.threads <= 4 for point in points)

    def test_budget_domain_defaults_to_package(self):
        from repro.obs.energy import EnergyBudget

        budget = EnergyBudget("cap", power_w=10.0)
        assert budget.domain == "package"
        pinned = EnergyBudget("p-cap", power_w=10.0, domain="P:package")
        assert pinned.domain == "P:package"

    def test_bench_scenario_registered(self):
        from repro.bench import get_scenario

        scenario = get_scenario("biglittle_power_cap")
        assert scenario.quick
