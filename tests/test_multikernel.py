"""Tests for the multi-kernel application path (two-phase extras app)."""

import numpy as np
import pytest

from repro.cir import parse, to_source, walk, Call
from repro.gcc.flags import standard_levels
from repro.lara.metrics import weave_benchmark
from repro.milepost.features import extract_features
from repro.polybench.extras import TWO_PHASE
from repro.polybench.workload import profile_kernel


class TestTwoPhaseApp:
    def test_parses_with_both_kernels(self):
        unit = TWO_PHASE.parse()
        assert unit.has_function("kernel_update")
        assert unit.has_function("kernel_solve")

    def test_reference_identity(self):
        inputs = TWO_PHASE.make_inputs(np.random.default_rng(0), scale=0.01)
        out = TWO_PHASE.reference(inputs)
        a_hat = inputs["A"] + np.outer(inputs["u"], inputs["v"])
        np.testing.assert_allclose(out["y"], a_hat.T @ (a_hat @ inputs["x"]))

    def test_not_in_table1_registry(self):
        from repro.polybench.suite import BENCHMARK_NAMES

        assert "two-phase" not in BENCHMARK_NAMES

    def test_each_kernel_profiles_independently(self):
        update = profile_kernel(TWO_PHASE, kernel="kernel_update")
        solve = profile_kernel(TWO_PHASE, kernel="kernel_solve")
        assert update.kernel == "kernel_update"
        assert solve.loads > update.loads  # two passes over A vs one
        assert update.parallel_regions == 1
        assert solve.parallel_regions == 2
        assert solve.reduction_innermost and not update.reduction_innermost

    def test_per_kernel_features_differ(self):
        unit = TWO_PHASE.parse()
        update = extract_features(unit, "kernel_update")
        solve = extract_features(unit, "kernel_solve")
        assert update["ft16_loops"] < solve["ft16_loops"]
        assert solve["ft39_reduction_loops"] > 0


class TestMultiKernelWeaving:
    @pytest.fixture(scope="class")
    def weaved(self):
        report, weaver = weave_benchmark(TWO_PHASE, standard_levels())
        return report, weaver

    def test_both_kernels_get_wrappers(self, weaved):
        _, weaver = weaved
        assert weaver.unit.has_function("kernel_update__wrapper")
        assert weaver.unit.has_function("kernel_solve__wrapper")

    def test_both_kernels_cloned_per_version(self, weaved):
        _, weaver = weaved
        names = [func.name for func in weaver.unit.functions()]
        update_clones = [n for n in names if n.startswith("kernel_update__v")]
        solve_clones = [n for n in names if n.startswith("kernel_solve__v")]
        assert len(update_clones) == len(solve_clones) == 8  # 4 levels x 2 bindings

    def test_main_calls_both_wrappers(self, weaved):
        _, weaver = weaved
        main = weaver.unit.function("main")
        called = {
            node.name for node in walk(main.body) if isinstance(node, Call) and node.name
        }
        assert "kernel_update__wrapper" in called
        assert "kernel_solve__wrapper" in called
        assert "kernel_update" not in called  # original call rewritten

    def test_margot_instrumentation_around_both(self, weaved):
        _, weaver = weaved
        printed = to_source(weaver.unit)
        assert printed.count("margot_update(") == 2
        assert printed.count("margot_start_monitor();") == 2
        assert printed.count("margot_init();") == 1

    def test_weaved_source_round_trips(self, weaved):
        _, weaver = weaved
        printed = to_source(weaver.unit)
        assert to_source(parse(printed)) == printed

    def test_metrics_cover_both_kernels(self, weaved):
        report, weaver = weaved
        # roughly double the single-kernel effort: a single-kernel app
        # weaved with the same configs performs about half the actions
        single_report, _ = weave_benchmark(
            __import__("repro.polybench.suite", fromlist=["load"]).load("mvt"),
            standard_levels(),
        )
        assert report.actions > 1.5 * single_report.actions
        assert report.weaved_loc > 4 * report.original_loc


class TestMultiKernelWeavedExecution:
    def test_weaved_two_phase_executes_and_matches_reference(self):
        """Both weaved wrappers dispatch and the combined result equals
        the reference (update phase feeds the solve phase)."""
        from repro.cir.interp import Interpreter
        from repro.gcc.flags import standard_levels
        from repro.lara.metrics import weave_benchmark

        _, weaver = weave_benchmark(TWO_PHASE, standard_levels())
        stubs = {
            "margot_init": lambda: None,
            "margot_update": lambda v, t: (v.set(2), t.set(1)),
            "margot_start_monitor": lambda: None,
            "margot_stop_monitor": lambda: None,
            "margot_log": lambda: None,
        }
        tiny = {"N": 7}
        interp = Interpreter(weaver.unit, macro_overrides=tiny, intrinsics=stubs)
        interp.run_main()

        n = 7
        a0 = np.fromfunction(lambda i, j: (i * j % n) / n, (n, n))
        u = np.fromfunction(lambda i: ((i + 1) % n) / n, (n,))
        v = np.fromfunction(lambda i: ((i + 2) % n) / n, (n,))
        x = np.fromfunction(lambda i: ((i + 3) % n) / n, (n,))
        a_hat = a0 + np.outer(u, v)
        expected_y = a_hat.T @ (a_hat @ x)
        np.testing.assert_allclose(interp.global_value("y"), expected_y)

    def test_original_two_phase_main_executes(self):
        from repro.cir.interp import Interpreter

        interp = Interpreter(TWO_PHASE.parse(), macro_overrides={"N": 6})
        assert interp.run_main() == 0
        assert interp.global_value("y").shape == (6,)
