"""Tests for the timing-instrumentation strategy and Pareto-pruned
runtime knowledge."""

import pytest

from repro.cir import parse, to_source
from repro.lara.strategies.instrumentation import TimingInstrumentation
from repro.lara.weaver import Weaver
from repro.polybench.suite import load

SOURCE = """
#include <stdio.h>
#define N 64
#define DATA_TYPE double
static DATA_TYPE A[N];

void helper(int n)
{
  int i;
  for (i = 0; i < n; i++)
    A[i] = A[i] + 1.0;
}

void kernel_two_loops(int n)
{
  int i, j;
#pragma omp parallel for
  for (i = 0; i < n; i++)
    A[i] = 0.0;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i] = A[i] + A[j];
  helper(n);
}
"""


@pytest.fixture
def weaver():
    return Weaver(parse(SOURCE, name="inst.c"))


class TestTimingInstrumentation:
    def test_outermost_loops_instrumented(self, weaver):
        strategy = TimingInstrumentation(loops=True)
        (result,) = strategy.apply(weaver, ["kernel_two_loops"])
        assert result.instrumented_loops == 2  # inner j loop skipped
        printed = to_source(weaver.unit)
        assert printed.count("omp_get_wtime()") == 2 * 2
        assert "socrates loop:0" in printed

    def test_all_loops_when_not_outermost_only(self, weaver):
        strategy = TimingInstrumentation(loops=True, outermost_only=False)
        (result,) = strategy.apply(weaver, ["kernel_two_loops"])
        assert result.instrumented_loops == 3

    def test_timer_lands_above_omp_pragma(self, weaver):
        strategy = TimingInstrumentation(loops=True)
        strategy.apply(weaver, ["kernel_two_loops"])
        printed = to_source(weaver.unit)
        kernel_start = printed.index("void kernel_two_loops")
        timer_pos = printed.index("__socrates_timer_0", kernel_start)
        pragma_pos = printed.index("#pragma omp parallel for", kernel_start)
        loop_pos = printed.index("for (i = 0; i < n; i++)", kernel_start)
        assert timer_pos < pragma_pos < loop_pos

    def test_call_instrumentation(self, weaver):
        strategy = TimingInstrumentation(loops=False, calls=["helper"])
        (result,) = strategy.apply(weaver, ["kernel_two_loops"])
        assert result.instrumented_calls == 1
        assert result.instrumented_loops == 0
        assert "socrates call:helper" in to_source(weaver.unit)

    def test_instrumented_source_reparses(self, weaver):
        TimingInstrumentation(loops=True, calls=["helper"]).apply(
            weaver, ["kernel_two_loops", "helper"]
        )
        printed = to_source(weaver.unit)
        assert to_source(parse(printed)) == printed

    def test_includes_inserted(self, weaver):
        TimingInstrumentation().apply(weaver, ["helper"])
        printed = to_source(weaver.unit)
        assert "#include <omp.h>" in printed

    def test_works_on_polybench(self):
        app = load("jacobi-2d")
        weaver = Weaver(app.parse())
        strategy = TimingInstrumentation(loops=True)
        (result,) = strategy.apply(weaver, [app.kernels[0]])
        assert result.instrumented_loops == 1  # the t loop
        printed = to_source(weaver.unit)
        assert to_source(parse(printed)) == printed

    def test_actions_metered(self, weaver):
        strategy = TimingInstrumentation(loops=True)
        before = weaver.metrics.actions_performed
        strategy.apply(weaver, ["kernel_two_loops"])
        assert weaver.metrics.actions_performed > before


class TestParetoPrunedToolflow:
    @pytest.fixture(scope="class")
    def pruned_build(self):
        from repro.core.toolflow import SocratesToolflow

        flow = SocratesToolflow(
            dse_repetitions=2, thread_counts=[1, 4, 8, 16, 32], pareto_prune=True
        )
        return flow.build(load("mvt"))

    def test_runtime_knowledge_smaller_than_exploration(self, pruned_build):
        runtime_kb = pruned_build.adaptive.manager.asrtm.knowledge
        assert len(runtime_kb) < len(pruned_build.exploration.knowledge)

    def test_pruned_app_still_selects_extremes(self, pruned_build):
        from repro.margot.state import (
            OptimizationState,
            maximize_throughput,
            maximize_throughput_per_watt_squared,
        )

        app = pruned_build.adaptive
        app.add_state(
            OptimizationState("perf", rank=maximize_throughput()), activate=True
        )
        app.add_state(
            OptimizationState("eff", rank=maximize_throughput_per_watt_squared())
        )
        perf = app.run_once()
        app.switch_state("eff")
        eff = app.run_once()
        # mvt is tiny and memory-bound, so the two policies can land on
        # near-identical points; efficiency must never burn *more* power
        assert eff.power_w <= perf.power_w + 3.0
        assert perf.throughput >= eff.throughput * 0.9

    def test_pruned_selection_matches_unpruned_optimum(self, pruned_build):
        """Dominated points can never win a monotone rank: pruning must
        not change the unconstrained selections."""
        from repro.dse.pareto import pareto_front
        from repro.margot.asrtm import ApplicationRuntimeManager
        from repro.margot.state import OptimizationState, minimize_time

        full = pruned_build.exploration.knowledge
        pruned = pareto_front(full, [("throughput", True), ("power", False)])
        selections = []
        for kb in (full, pruned):
            asrtm = ApplicationRuntimeManager(kb)
            asrtm.add_state(OptimizationState("perf", rank=minimize_time()))
            selections.append(asrtm.update().key)
        assert selections[0] == selections[1]


class TestInstrumentedExecution:
    def test_timer_reports_appear_when_interpreted(self):
        """The woven timers actually fire: interpreting the
        instrumented source captures one report per outermost loop."""
        from repro.cir import parse, to_source
        from repro.cir.interp import Interpreter

        weaver = Weaver(parse(SOURCE, name="inst.c"))
        TimingInstrumentation(loops=True).apply(weaver, ["kernel_two_loops"])
        interp = Interpreter(weaver.unit, macro_overrides={"N": 8})
        interp.call("kernel_two_loops", 8)
        reports = [line for line in interp.stderr if line.startswith("socrates loop:")]
        assert len(reports) == 2
        for line in reports:
            elapsed = float(line.rsplit(" ", 1)[1])
            assert elapsed > 0.0
