"""Tests for the CIR interpreter.

The flagship tests execute every Polybench benchmark source (at a tiny
dataset) and compare the computed arrays against the numpy reference
implementations — direct, executable evidence that the C sources and
the functional models implement the same o = f(i).
"""

import numpy as np
import pytest

from repro.cir import parse
from repro.cir.interp import InterpError, Interpreter, make_cell
from repro.polybench.suite import load


def run_snippet(body, globals_text="", macro_overrides=None):
    source = f"{globals_text}\nint run(void) {{ {body} }}\n"
    interp = Interpreter(parse(source), macro_overrides=macro_overrides)
    return interp, interp.call("run")


class TestBasics:
    def test_arithmetic_and_return(self):
        _, value = run_snippet("return 2 + 3 * 4;")
        assert value == 14

    def test_c_integer_division_truncates_toward_zero(self):
        _, value = run_snippet("return -7 / 2;")
        assert value == -3  # python -7 // 2 == -4: must be C semantics

    def test_c_modulo_sign(self):
        _, value = run_snippet("return -7 % 2;")
        assert value == -1

    def test_float_division(self):
        _, value = run_snippet("double a = 7.0; return a / 2.0;")
        assert value == 3.5

    def test_int_float_promotion(self):
        _, value = run_snippet("int i = 7; double d = 2.0; return i / d;")
        assert value == 3.5

    def test_declared_int_truncates_assignment(self):
        _, value = run_snippet("int i = 0; i = 7 / 2; return i;")
        assert value == 3

    def test_for_loop_accumulation(self):
        _, value = run_snippet("int i, s = 0; for (i = 1; i <= 10; i++) s += i; return s;")
        assert value == 55

    def test_while_and_break(self):
        _, value = run_snippet(
            "int x = 1; while (1) { x = x * 2; if (x > 100) break; } return x;"
        )
        assert value == 128

    def test_continue(self):
        _, value = run_snippet(
            "int i, s = 0; for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s;"
        )
        assert value == 20

    def test_do_while(self):
        _, value = run_snippet("int x = 0; do x++; while (x < 5); return x;")
        assert value == 5

    def test_ternary(self):
        _, value = run_snippet("int a = 3, b = 9; return a > b ? a : b;")
        assert value == 9

    def test_logical_short_circuit(self):
        # the right side would divide by zero if evaluated
        _, value = run_snippet("int z = 0; return z != 0 && 1 / z > 0;")
        assert value == 0

    def test_prefix_postfix_increment(self):
        _, value = run_snippet("int i = 5; int a = i++; int b = ++i; return a * 100 + b;")
        assert value == 507

    def test_comma_operator(self):
        _, value = run_snippet("int i, j; for (i = 0, j = 10; i < 3; i++, j--) ; return j;")
        assert value == 7

    def test_block_scoping(self):
        _, value = run_snippet("int x = 1; { int x = 2; } return x;")
        assert value == 1


class TestArraysAndPointers:
    def test_array_declaration_and_indexing(self):
        _, value = run_snippet(
            "double a[4]; a[0] = 1.5; a[3] = a[0] * 2.0; return a[3];"
        )
        assert value == 3.0

    def test_multidim_array(self):
        interp, _ = run_snippet(
            "int i, j; for (i = 0; i < 3; i++) for (j = 0; j < 3; j++) M[i][j] = i * 10 + j; return M[2][1];",
            globals_text="#define N 3\nstatic int M[N][N];",
        )
        matrix = interp.global_value("M")
        assert matrix[2, 1] == 21
        assert matrix.shape == (3, 3)

    def test_macro_override_resizes_arrays(self):
        interp, _ = run_snippet(
            "return 0;", globals_text="#define N 100\nstatic double A[N][N];",
            macro_overrides={"N": 4},
        )
        assert interp.global_value("A").shape == (4, 4)

    def test_sized_initializer(self):
        _, value = run_snippet("int a[3] = {7, 8, 9}; return a[1];")
        assert value == 8

    def test_unsized_initializer(self):
        interp = Interpreter(parse("static int table[] = {5, 6, 7, 8};"))
        assert list(interp.global_value("table")) == [5, 6, 7, 8]

    def test_pointer_write_through(self):
        source = """
void set(double *out) { *out = 42.5; }
double run(void) { double x = 0.0; set(&x); return x; }
"""
        interp = Interpreter(parse(source))
        assert interp.call("run") == 42.5

    def test_make_cell_reference(self):
        source = "void set(int *out) { *out = 7; }"
        interp = Interpreter(parse(source))
        cell = make_cell(0)
        interp.call("set", cell)
        assert cell.get() == 7

    def test_int_array_dtype(self):
        interp = Interpreter(parse("#define N 4\nstatic int seq[N];"))
        assert interp.global_value("seq").dtype == np.int64


class TestFunctionsAndIntrinsics:
    def test_function_call_and_recursion(self):
        source = """
int fib(int n) {
  if (n < 2)
    return n;
  return fib(n - 1) + fib(n - 2);
}
"""
        interp = Interpreter(parse(source))
        assert interp.call("fib", 10) == 55

    def test_math_intrinsics(self):
        _, value = run_snippet("return sqrt(16.0) + fabs(-2.0);")
        assert value == 6.0

    def test_fprintf_captured(self):
        source = '#include <stdio.h>\nvoid report(int x) { fprintf(stderr, "x=%d\\n", x); }'
        interp = Interpreter(parse(source))
        interp.call("report", 5)
        assert interp.stderr == ["x=5\n"]

    def test_custom_intrinsic(self):
        source = "int run(void) { return magic() + 1; }"
        interp = Interpreter(parse(source), intrinsics={"magic": lambda: 41})
        assert interp.call("run") == 42

    def test_undefined_function_raises(self):
        interp = Interpreter(parse("int run(void) { return nope(); }"))
        with pytest.raises(InterpError):
            interp.call("run")

    def test_wrong_arity_raises(self):
        interp = Interpreter(parse("int f(int a) { return a; }"))
        with pytest.raises(InterpError):
            interp.call("f", 1, 2)

    def test_step_budget_stops_infinite_loop(self):
        interp = Interpreter(parse("void spin(void) { while (1) ; }"), max_steps=10_000)
        with pytest.raises(InterpError):
            interp.call("spin")

    def test_omp_wtime_monotone(self):
        _, value = run_snippet(
            "double a = omp_get_wtime(); double b = omp_get_wtime(); return b - a;"
        )
        assert value > 0


# ---------------------------------------------------------------------------
# executing the twelve benchmarks against the numpy references
# ---------------------------------------------------------------------------

#: Per-app driver: tiny sizes, init/kernel call builders, input and
#: output mappings between C globals and reference dict keys.
_SCALARS = {"alpha": 1.5, "beta": 1.2}

_DRIVERS = {
    "2mm": dict(
        sizes={"NI": 8, "NJ": 9, "NK": 10, "NL": 11},
        init=lambda s: ("init_array", [s["NI"], s["NJ"], s["NK"], s["NL"], make_cell(), make_cell()]),
        kernel=lambda s: ("kernel_2mm", [s["NI"], s["NJ"], s["NK"], s["NL"], 1.5, 1.2]),
        inputs={"A": "A", "B": "B", "C": "C", "D": "D"},
        consts=_SCALARS,
        outputs={"D": "D"},
    ),
    "3mm": dict(
        sizes={"NI": 6, "NJ": 7, "NK": 8, "NL": 9, "NM": 10},
        init=lambda s: ("init_array", [s["NI"], s["NJ"], s["NK"], s["NL"], s["NM"]]),
        kernel=lambda s: ("kernel_3mm", [s["NI"], s["NJ"], s["NK"], s["NL"], s["NM"]]),
        inputs={"A": "A", "B": "B", "C": "C", "D": "D"},
        consts={},
        outputs={"E": "E", "F": "F", "G": "G"},
    ),
    "atax": dict(
        sizes={"M": 8, "N": 10},
        init=lambda s: ("init_array", [s["M"], s["N"]]),
        kernel=lambda s: ("kernel_atax", [s["M"], s["N"]]),
        inputs={"A": "A", "x": "x"},
        consts={},
        outputs={"y": "y", "tmp": "tmp"},
    ),
    "correlation": dict(
        sizes={"M": 8, "N": 10},
        init=lambda s: ("init_array", [s["M"], s["N"]]),
        kernel=lambda s: ("kernel_correlation", [s["M"], s["N"], float(s["N"])]),
        inputs={"data": "data"},
        consts={},
        outputs={"corr": "corr", "mean": "mean", "stddev": "stddev"},
    ),
    "doitgen": dict(
        sizes={"NQ": 6, "NR": 7, "NP": 8},
        init=lambda s: ("init_array", [s["NR"], s["NQ"], s["NP"]]),
        kernel=lambda s: ("kernel_doitgen", [s["NR"], s["NQ"], s["NP"]]),
        inputs={"A": "A", "C4": "C4"},
        consts={},
        outputs={"A": "A"},
    ),
    "gemver": dict(
        sizes={"N": 10},
        init=lambda s: ("init_array", [s["N"], make_cell(), make_cell()]),
        kernel=lambda s: ("kernel_gemver", [s["N"], 1.5, 1.2]),
        inputs={
            "A": "A", "u1": "u1", "v1": "v1", "u2": "u2", "v2": "v2",
            "x": "x", "w": "w", "y": "y", "z": "z",
        },
        consts=_SCALARS,
        outputs={"A": "A", "x": "x", "w": "w"},
    ),
    "jacobi-2d": dict(
        sizes={"N": 8, "TSTEPS": 3},
        init=lambda s: ("init_array", [s["N"]]),
        kernel=lambda s: ("kernel_jacobi_2d", [s["TSTEPS"], s["N"]]),
        inputs={"A": "A", "B": "B"},
        consts={},
        outputs={"A": "A", "B": "B"},
        extra_inputs=lambda s: {"tsteps": np.int64(s["TSTEPS"])},
    ),
    "mvt": dict(
        sizes={"N": 8},
        init=lambda s: ("init_array", [s["N"]]),
        kernel=lambda s: ("kernel_mvt", [s["N"]]),
        inputs={"A": "A", "x1": "x1", "x2": "x2", "y1": "y1", "y2": "y2"},
        consts={},
        outputs={"x1": "x1", "x2": "x2"},
    ),
    "nussinov": dict(
        sizes={"N": 12},
        init=lambda s: ("init_array", [s["N"]]),
        kernel=lambda s: ("kernel_nussinov", [s["N"]]),
        inputs={"seq": "seq"},
        consts={},
        outputs={"table": "table"},
    ),
    "seidel-2d": dict(
        sizes={"N": 8, "TSTEPS": 2},
        init=lambda s: ("init_array", [s["N"]]),
        kernel=lambda s: ("kernel_seidel_2d", [s["TSTEPS"], s["N"]]),
        inputs={"A": "A"},
        consts={},
        outputs={"A": "A"},
        extra_inputs=lambda s: {"tsteps": np.int64(s["TSTEPS"])},
    ),
    "syr2k": dict(
        sizes={"M": 7, "N": 8},
        init=lambda s: ("init_array", [s["N"], s["M"], make_cell(), make_cell()]),
        kernel=lambda s: ("kernel_syr2k", [s["N"], s["M"], 1.5, 1.2]),
        inputs={"A": "A", "B": "B", "C": "C"},
        consts=_SCALARS,
        outputs={"C": "C"},
    ),
    "syrk": dict(
        sizes={"M": 7, "N": 8},
        init=lambda s: ("init_array", [s["N"], s["M"], make_cell(), make_cell()]),
        kernel=lambda s: ("kernel_syrk", [s["N"], s["M"], 1.5, 1.2]),
        inputs={"A": "A", "C": "C"},
        consts=_SCALARS,
        outputs={"C": "C"},
    ),
}


class TestPolybenchExecution:
    """Interpret each benchmark's C source and compare against the
    numpy reference implementation, using the C init as the input."""

    @pytest.mark.parametrize("name", sorted(_DRIVERS))
    def test_kernel_matches_reference(self, name):
        driver = _DRIVERS[name]
        app = load(name)
        sizes = driver["sizes"]
        interp = Interpreter(app.parse(), macro_overrides=sizes)

        init_name, init_args = driver["init"](sizes)
        interp.call(init_name, *init_args)

        inputs = {
            key: np.array(interp.global_value(global_name), copy=True)
            for key, global_name in driver["inputs"].items()
        }
        inputs.update({key: np.float64(v) for key, v in driver["consts"].items()})
        if "extra_inputs" in driver:
            inputs.update(driver["extra_inputs"](sizes))

        kernel_name, kernel_args = driver["kernel"](sizes)
        interp.call(kernel_name, *kernel_args)

        expected = app.reference(inputs)
        for key, global_name in driver["outputs"].items():
            computed = np.asarray(interp.global_value(global_name), dtype=float)
            np.testing.assert_allclose(
                computed,
                np.asarray(expected[key], dtype=float),
                rtol=1e-10,
                atol=1e-12,
                err_msg=f"{name}: output {key!r} diverges from the reference",
            )

    def test_full_main_runs(self):
        """main() of a benchmark executes end to end (init + kernel)."""
        app = load("mvt")
        interp = Interpreter(app.parse(), macro_overrides={"N": 6})
        assert interp.run_main() == 0
        assert interp.global_value("x1").shape == (6,)


class TestAllMainsExecute:
    """Smoke: every benchmark's main() (init + kernel) runs end to end
    at a tiny dataset under the interpreter."""

    _TINY = {
        "2mm": {"NI": 5, "NJ": 5, "NK": 5, "NL": 5},
        "3mm": {"NI": 5, "NJ": 5, "NK": 5, "NL": 5, "NM": 5},
        "atax": {"M": 5, "N": 6},
        "correlation": {"M": 5, "N": 6},
        "doitgen": {"NQ": 4, "NR": 4, "NP": 5},
        "gemver": {"N": 6},
        "jacobi-2d": {"N": 6, "TSTEPS": 2},
        "mvt": {"N": 6},
        "nussinov": {"N": 8},
        "seidel-2d": {"N": 6, "TSTEPS": 2},
        "syr2k": {"M": 4, "N": 5},
        "syrk": {"M": 4, "N": 5},
    }

    @pytest.mark.parametrize("name", sorted(_TINY))
    def test_main_returns_zero(self, name):
        interp = Interpreter(load(name).parse(), macro_overrides=self._TINY[name])
        assert interp.run_main() == 0


class TestOmpThreadIntrinsics:
    """omp_get_num_threads reflects the simulated team size and the
    woven __socrates_num_threads control variable."""

    def test_default_team_size_is_one(self):
        unit = parse("int main() { return omp_get_num_threads(); }")
        assert Interpreter(unit).run_main() == 1

    def test_configured_team_size(self):
        unit = parse(
            "int main() { return omp_get_num_threads() + omp_get_max_threads(); }"
        )
        assert Interpreter(unit, num_threads=4).run_main() == 8

    def test_invalid_team_size_rejected(self):
        unit = parse("int main() { return 0; }")
        with pytest.raises(InterpError, match="num_threads"):
            Interpreter(unit, num_threads=0)

    def test_woven_control_variable_wins(self):
        unit = parse(
            "int __socrates_num_threads = 8;\n"
            "int main() { return omp_get_num_threads(); }"
        )
        assert Interpreter(unit, num_threads=2).run_main() == 8

    def test_control_variable_updates_are_visible(self):
        unit = parse(
            "int __socrates_num_threads = 2;\n"
            "int main() {\n"
            "  int before = omp_get_num_threads();\n"
            "  __socrates_num_threads = 16;\n"
            "  return before * 100 + omp_get_num_threads();\n"
            "}"
        )
        assert Interpreter(unit).run_main() == 216

    def test_invalid_control_variable_falls_back(self):
        unit = parse(
            "int __socrates_num_threads = 0;\n"
            "int main() { return omp_get_num_threads(); }"
        )
        assert Interpreter(unit, num_threads=3).run_main() == 3

    def test_custom_threads_variable_name(self):
        unit = parse(
            "int team = 5;\nint main() { return omp_get_max_threads(); }"
        )
        assert Interpreter(unit, threads_variable="team").run_main() == 5
