"""Tests for the unified evaluation engine (repro.engine).

The engine is the single compile→place→run path behind the toolflow,
the design-space explorer and the COBAYN corpus builder.  These tests
pin down its three contracts:

* **caching** — one compilation per distinct (profile, flag label),
  one parse/profile per app, exact hit/miss accounting;
* **determinism** — the serial backend reproduces the historical
  hand-rolled ``run()`` loops byte for byte, and the process-pool
  backend produces bit-identical results to the serial one for any
  worker count;
* **telemetry** — a full toolflow build emits one stage event per
  Figure 1 stage, with counter deltas that add up.
"""

from __future__ import annotations

import pytest

import repro.engine.caching as engine_caching
from repro.core.toolflow import SocratesToolflow
from repro.dse.explorer import DesignSpaceExplorer
from repro.engine import (
    CompileCache,
    DesignPoint,
    DesignSpace,
    EvaluationEngine,
    ProcessPoolBackend,
    ProfileCache,
    SerialBackend,
    stage_report,
)
from repro.gcc.compiler import Compiler
from repro.gcc.flags import standard_levels
from repro.machine.executor import MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.topology import default_machine


def make_engine(seed=0x50C7, backend=None):
    machine = default_machine()
    return EvaluationEngine(
        compiler=Compiler(),
        executor=MachineExecutor(machine, seed=seed),
        omp=OpenMPRuntime(machine),
        machine=machine,
        backend=backend,
    )


def small_space(configs=None, threads=(1, 4)):
    return DesignSpace(
        compiler_configs=list(configs or standard_levels()),
        thread_counts=list(threads),
    )


class TestCompileCache:
    def test_one_compile_per_flag_label(self, two_mm):
        engine = make_engine()
        profile = engine.profile(two_mm)
        points = small_space().points()  # 4 configs x 2 threads x 2 bindings
        engine.evaluate(profile, points, repetitions=2)
        # one cache lookup (and one compilation) per distinct label,
        # no matter how many thread/binding variants visit it
        assert engine.compile_cache.stats.misses == 4
        assert engine.compile_cache.stats.hits == 0
        assert len(engine.compile_cache) == 4
        assert len(engine.compile_cache.entries_for(profile)) == 4

    def test_second_batch_hits(self, two_mm):
        engine = make_engine()
        profile = engine.profile(two_mm)
        points = small_space().points()
        engine.evaluate(profile, points)
        misses = engine.compile_cache.stats.misses
        engine.evaluate(profile, points)
        assert engine.compile_cache.stats.misses == misses
        assert engine.compile_cache.stats.hits == 4

    def test_distinct_profiles_do_not_collide(self, two_mm, apps):
        other = next(app for app in apps if app.name != two_mm.name)
        engine = make_engine()
        config = standard_levels()[0]
        kernel_a = engine.compile(engine.profile(two_mm), config)
        kernel_b = engine.compile(engine.profile(other), config)
        assert kernel_a is not kernel_b
        assert engine.compile_cache.stats.misses == 2


class TestProfileCache:
    def test_profile_parsed_once(self, two_mm):
        engine = make_engine()
        first = engine.profile(two_mm)
        second = engine.profile(two_mm)
        assert first is second
        assert engine.profile_cache.stats.misses == 1
        assert engine.profile_cache.stats.hits == 1

    def test_features_share_the_cached_unit(self, two_mm):
        engine = make_engine()
        unit = engine.unit(two_mm)
        assert engine.unit(two_mm) is unit
        vector = engine.features(two_mm)
        assert engine.features(two_mm) is vector


class TestTruthCache:
    def test_repeat_visits_skip_the_model(self, two_mm):
        engine = make_engine()
        profile = engine.profile(two_mm)
        points = small_space().points()
        engine.evaluate(profile, points)
        counters = engine.counters
        assert counters.truth_misses == len(points)
        assert counters.truth_hits == 0
        engine.evaluate(profile, points)
        counters = engine.counters
        assert counters.truth_misses == len(points)
        assert counters.truth_hits == len(points)

    def test_cached_truths_do_not_change_noise(self, two_mm):
        """Noise draws stay per-visit even when the truth is cached."""
        cold = make_engine(seed=99)
        profile = cold.profile(two_mm)
        points = small_space().points()
        twice_cold = [
            s.times for s in cold.evaluate(profile, points, repetitions=2)
        ]
        warm = make_engine(seed=99)
        warm.evaluate(warm.profile(two_mm), points, repetitions=2)
        # second pass on the warm engine consumed the same stream span
        assert [
            s.times for s in warm.evaluate(warm.profile(two_mm), points, repetitions=2)
        ] != twice_cold


class TestEvaluateSemantics:
    def test_invalid_repetitions_rejected(self, two_mm):
        engine = make_engine()
        profile = engine.profile(two_mm)
        with pytest.raises(ValueError, match="repetitions"):
            engine.evaluate(profile, small_space().points(), repetitions=0)

    def test_noiseless_mode_leaves_the_stream_untouched(self, two_mm):
        engine = make_engine(seed=7)
        profile = engine.profile(two_mm)
        engine.evaluate(profile, small_space().points(), noisy=False)
        witness = make_engine(seed=7)
        assert (
            engine.executor.noise_factors(1) == witness.executor.noise_factors(1)
        )

    def test_noiseless_samples_repeat_the_truth(self, two_mm):
        engine = make_engine()
        profile = engine.profile(two_mm)
        samples = engine.evaluate(
            profile, small_space().points(), repetitions=3, noisy=False
        )
        for sample in samples:
            assert sample.times == [sample.times[0]] * 3
            assert sample.powers == [sample.powers[0]] * 3

    def test_bit_identical_to_the_historical_run_loop(self, two_mm):
        """engine.evaluate == compile + place + noisy run(), per rep."""
        seed, repetitions = 0xBEEF, 3
        engine = make_engine(seed=seed)
        profile = engine.profile(two_mm)
        points = small_space(threads=(1, 2, 8)).points()
        samples = engine.evaluate(profile, points, repetitions=repetitions)

        machine = default_machine()
        compiler = Compiler()
        executor = MachineExecutor(machine, seed=seed)
        omp = OpenMPRuntime(machine)
        for sample, point in zip(samples, points):
            kernel = compiler.compile(profile, point.compiler)
            placement = omp.place(point.threads, point.binding)
            for rep in range(repetitions):
                result = executor.run(kernel, placement)
                assert sample.times[rep] == result.time_s
                assert sample.powers[rep] == result.power_w


class TestBackends:
    def test_process_pool_matches_serial(self, two_mm):
        """Identical seeded samples regardless of worker count."""
        points = small_space().points()

        def run(backend):
            engine = make_engine(seed=0xD15C, backend=backend)
            profile = engine.profile(two_mm)
            samples = engine.evaluate(profile, points, repetitions=2)
            return [(s.times, s.powers) for s in samples]

        serial = run(SerialBackend())
        pooled = run(ProcessPoolBackend(max_workers=2, chunksize=3))
        assert serial == pooled

    def test_explorer_knowledge_identical_across_backends(self, two_mm):
        """Same seed → identical knowledge base, serial or pooled."""

        def knowledge(backend):
            engine = make_engine(backend=backend)
            explorer = DesignSpaceExplorer(
                engine.compiler,
                engine.executor,
                engine.omp,
                repetitions=2,
                engine=engine,
            )
            result = explorer.explore(
                engine.profile(two_mm), small_space(), seed=0xD5E
            )
            return [
                (dict(op.knobs), {k: (m.mean, m.std) for k, m in op.metrics.items()})
                for op in result.knowledge
            ]

        assert knowledge(SerialBackend()) == knowledge(
            ProcessPoolBackend(max_workers=3, chunksize=2)
        )

    def test_pool_parameter_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessPoolBackend(max_workers=-1)
        with pytest.raises(ValueError, match="chunksize"):
            ProcessPoolBackend(chunksize=0)


class TestToolflowValidation:
    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="dse_repetitions"):
            SocratesToolflow(dse_repetitions=0)

    def test_zero_cobayn_k_rejected(self):
        with pytest.raises(ValueError, match="cobayn_k"):
            SocratesToolflow(cobayn_k=0)

    def test_toolflow_adopts_engine_components(self):
        engine = make_engine()
        flow = SocratesToolflow(engine=engine)
        assert flow.engine is engine
        assert flow.compiler is engine.compiler
        assert flow.executor is engine.executor
        assert flow.omp is engine.omp


class TestToolflowTelemetry:
    STAGES = ["characterize", "prune", "weave", "profile", "assemble"]

    def test_every_stage_emits_one_event_in_order(self, built_2mm):
        assert [event.stage for event in built_2mm.stage_events] == self.STAGES
        assert all(event.wall_time_s >= 0.0 for event in built_2mm.stage_events)

    def test_stage_accounting(self, built_2mm, toolflow):
        by_stage = {event.stage: event for event in built_2mm.stage_events}
        # leave-one-out corpus: 11 training apps x 128 configurations
        assert by_stage["prune"].points_evaluated == 11 * 128
        # full-factorial DSE: 8 configs x |thread sweep| x 2 bindings
        expected = 8 * len(toolflow._thread_counts) * 2
        assert by_stage["profile"].points_evaluated == expected
        assert by_stage["profile"].compile_misses == 8
        # assemble reuses every (config, binding) kernel from the cache
        assert by_stage["assemble"].compile_misses == 0
        assert by_stage["assemble"].compile_hits == 16
        assert by_stage["characterize"].points_evaluated == 0
        assert by_stage["weave"].points_evaluated == 0

    def test_stage_report_totals_add_up(self, built_2mm):
        report = built_2mm.stage_report()
        assert [entry["stage"] for entry in report["stages"]] == self.STAGES
        for counter in (
            "compile_hits",
            "compile_misses",
            "points_evaluated",
            "truth_misses",
        ):
            assert report["totals"][counter] == sum(
                entry[counter] for entry in report["stages"]
            )

    def test_engine_stats_shape(self, toolflow, built_2mm):
        stats = toolflow.engine.stats()
        assert stats["backend"] == "serial"
        for section in ("compile_cache", "profile_cache", "truth_cache"):
            assert "hits" in stats[section] and "misses" in stats[section]
        assert stats["points_evaluated"] > 0


class TestProfileRunsOncePerBuild:
    def test_full_build_profiles_each_app_exactly_once(self, two_mm, monkeypatch):
        """Regression: the pre-engine toolflow profiled the target app
        twice (once in _profile, once in _assemble)."""
        calls = []
        original = engine_caching.profile_kernel

        def counting(app, kernel=None, size_overrides=None, unit=None):
            calls.append(app.name)
            return original(
                app, kernel=kernel, size_overrides=size_overrides, unit=unit
            )

        monkeypatch.setattr(engine_caching, "profile_kernel", counting)
        flow = SocratesToolflow(dse_repetitions=1, thread_counts=[1, 2])
        result = flow.build(two_mm)
        assert calls.count(two_mm.name) == 1
        # every training app profiled exactly once as well
        assert sorted(set(calls)) == sorted(calls)
        # one compilation per distinct (profile, CF) pair for the target
        profile = flow.engine.profile(two_mm)
        assert len(flow.engine.compile_cache.entries_for(profile)) == len(
            result.compiler_configs
        )


class TestEngineExports:
    def test_explorer_reexports_the_engine_model(self):
        from repro.dse import explorer
        from repro.engine import model

        assert explorer.DesignPoint is model.DesignPoint
        assert explorer.DesignSpace is model.DesignSpace
        assert explorer.ProfiledSample is model.ProfiledSample

    def test_caches_are_importable_from_the_package_root(self):
        assert CompileCache is engine_caching.CompileCache
        assert ProfileCache is engine_caching.ProfileCache

    def test_design_point_is_hashable(self):
        config = standard_levels()[0]
        point = DesignPoint(compiler=config, threads=2, binding=BindingPolicy.CLOSE)
        assert point == DesignPoint(
            compiler=config, threads=2, binding=BindingPolicy.CLOSE
        )
        assert len({point, point}) == 1

    def test_stage_report_empty(self):
        report = stage_report([])
        assert report["stages"] == []
        assert report["totals"]["points_evaluated"] == 0
