"""Tests for `repro.obs.alerts` + `repro.obs.flight` + `repro.obs.stream`.

The streaming SLO alerting layer: virtual-time telemetry bus, online
detectors (EWMA, CUSUM, multi-window burn rate), the bounded flight
recorder, and the incident pipeline (bundle build, schema validation,
deterministic fingerprints, root-cause attribution).
"""

import dataclasses
import json

import pytest

from repro.core.scenario import Phase, Scenario
from repro.core.toolflow import SocratesToolflow
from repro.margot.state import (
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
)
from repro.obs import Observability
from repro.obs.alerts import (
    AlertEngine,
    AlertPolicy,
    BurnRateDetector,
    CusumDetector,
    EwmaDetector,
)
from repro.obs.energy import EnergyBudget
from repro.obs.flight import (
    INCIDENT_SCHEMA,
    FlightRecorder,
    IncidentBundle,
    attribute_incident,
    incident_fingerprint,
    incident_paths,
    load_incident,
)
from repro.obs.stream import (
    ENERGY,
    EVENT_KINDS,
    METRIC,
    SPAN,
    NULL_BUS,
    StreamEvent,
    TelemetryBus,
)
from repro.obs.validate import validate_file, validate_incident
from repro.polybench.suite import load


# -- the virtual-time bus -----------------------------------------------------


class TestTelemetryBus:
    def test_clock_is_high_water_mark(self):
        bus = TelemetryBus()
        bus.publish(StreamEvent(ENERGY, 1.0, "power.package", 10.0))
        bus.publish(StreamEvent(ENERGY, 2.5, "power.package", 11.0))
        assert bus.now == 2.5
        assert bus.events_published == 2

    def test_regression_is_a_named_error(self):
        bus = TelemetryBus()
        bus.publish(StreamEvent(ENERGY, 2.0, "power.package", 10.0))
        with pytest.raises(ValueError, match="virtual time"):
            bus.publish(StreamEvent(ENERGY, 1.0, "power.package", 10.0))

    def test_advance_is_silent_max(self):
        bus = TelemetryBus()
        bus.advance(3.0)
        bus.advance(1.0)  # no error, no regression
        assert bus.now == 3.0

    def test_stamp_publishes_at_now(self):
        bus = TelemetryBus()
        bus.advance(4.0)
        seen = []
        bus.subscribe(seen.append)
        bus.stamp(METRIC, "hits", 7.0)
        assert seen[0].t == 4.0
        assert seen[0].value == 7.0

    def test_subscribers_fan_out_in_order(self):
        bus = TelemetryBus()
        order = []
        bus.subscribe(lambda event: order.append(("a", event.name)))
        bus.subscribe(lambda event: order.append(("b", event.name)))
        bus.publish(StreamEvent(METRIC, 0.0, "x"))
        assert order == [("a", "x"), ("b", "x")]

    def test_null_bus_swallows_everything(self):
        from repro.obs.stream import NullTelemetryBus

        bus = NullTelemetryBus()
        seen = []
        bus.subscribe(seen.append)  # subscription is discarded
        bus.publish(StreamEvent(METRIC, 0.0, "x"))
        bus.stamp(METRIC, "y", 1.0)
        assert seen == []
        assert bus.enabled is False
        assert NULL_BUS.enabled is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            StreamEvent("bogus", 0.0, "x")

    def test_events_are_immutable(self):
        event = StreamEvent(METRIC, 0.0, "x")
        with pytest.raises(AttributeError):
            event.t = 1.0


# -- detectors ----------------------------------------------------------------


class TestEwmaDetector:
    def test_no_verdict_during_warmup(self):
        detector = EwmaDetector(min_samples=8)
        assert all(detector.update(1.0 + 0.01 * i) is None for i in range(8))

    def test_spike_breaches_after_warmup(self):
        detector = EwmaDetector(alpha=0.2, z_threshold=4.0, min_samples=8)
        for i in range(20):
            detector.update(1.0 + 0.01 * (i % 3))
        z = detector.update(10.0)
        assert z is not None and z > 4.0

    def test_spike_judged_by_pre_update_stats(self):
        # The breaching sample must not dilute its own verdict.
        quiet = EwmaDetector(min_samples=4)
        for _ in range(10):
            quiet.update(1.0)
        mean_before = quiet.mean
        quiet.update(100.0)
        assert quiet.mean > mean_before  # state did absorb the spike

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            EwmaDetector(alpha=0.0)


class TestCusumDetector:
    def test_level_shift_up_detected_once(self):
        detector = CusumDetector(k=0.5, h=8.0, min_samples=10)
        for _ in range(10):
            detector.update(50.0)
        verdicts = [detector.update(53.0) for _ in range(40)]
        fired = [v for v in verdicts if v is not None]
        assert len(fired) == 1 and fired[0] > 0

    def test_rewarmup_after_changepoint(self):
        detector = CusumDetector(min_samples=5)
        for _ in range(5):
            detector.update(10.0)
        fired = [v for v in (detector.update(20.0) for _ in range(200)) if v]
        assert fired  # the shift was reported...
        # ...and reset() re-entered warm-up, so the new level becomes
        # the reference and the detector goes quiet instead of
        # alarming forever after one shift
        assert detector.update(20.0) is None
        assert len(detector._warmup) > 0

    def test_downward_shift_is_negative(self):
        detector = CusumDetector(min_samples=5)
        for value in [50.0, 51.0, 50.0, 49.0, 50.0]:
            detector.update(value)
        statistic = None
        for _ in range(100):
            statistic = detector.update(40.0)
            if statistic is not None:
                break
        assert statistic is not None and statistic < 0

    def test_min_samples_validated(self):
        with pytest.raises(ValueError, match="warm-up"):
            CusumDetector(min_samples=1)


class TestBurnRateDetector:
    def budget(self, watts=10.0):
        return EnergyBudget("cap", power_w=watts)

    def feed(self, detector, start, end, watts, step=0.05):
        t = start
        breaches = []
        while t < end:
            breaches.append(detector.update(t, t + step, watts))
            t += step
        return [b for b in breaches if b is not None]

    def test_fires_when_both_windows_burn(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        breaches = self.feed(detector, 0.0, 3.0, watts=15.0)
        assert len(breaches) == 1  # armed latch: one alert per excursion
        assert breaches[0]["short_burn"] > 1.0
        assert breaches[0]["long_burn"] > 1.0

    def test_no_alert_before_long_window_fills(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        assert not self.feed(detector, 0.0, 0.9, watts=100.0)

    def test_spike_shorter_than_long_window_filtered(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        assert not self.feed(detector, 0.0, 2.0, watts=5.0)
        # a 0.3s spike at 2x cannot push the 1.0s window over 1x
        assert not self.feed(detector, 2.0, 2.3, watts=20.0)
        assert not self.feed(detector, 2.3, 3.0, watts=5.0)

    def test_rearms_after_recovery(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        assert len(self.feed(detector, 0.0, 3.0, watts=15.0)) == 1
        self.feed(detector, 3.0, 6.0, watts=1.0)  # cool down, rearm
        assert detector.armed
        assert len(self.feed(detector, 6.0, 9.0, watts=15.0)) == 1

    def test_window_sums_match_ring_contents(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        self.feed(detector, 0.0, 5.0, watts=7.0)
        assert detector._short_dt == pytest.approx(
            sum(dt for _, dt, _ in detector._short)
        )
        assert detector._long_j == pytest.approx(
            sum(j for _, _, j in detector._long)
        )

    def test_total_energy_accumulates(self):
        detector = BurnRateDetector(self.budget(10.0), short_s=0.2, long_s=1.0)
        self.feed(detector, 0.0, 2.0, watts=10.0)
        assert detector.total_energy_j == pytest.approx(20.0, rel=0.05)

    def test_window_ordering_validated(self):
        with pytest.raises(ValueError, match="short"):
            BurnRateDetector(self.budget(), short_s=1.0, long_s=0.5)


# -- flight recorder ----------------------------------------------------------


def span_event(t, name="stage"):
    return StreamEvent(SPAN, t, name, 0.0)


class TestFlightRecorder:
    def test_bounded_eviction_in_order(self):
        evicted = []
        flight = FlightRecorder(capacity=3, on_evict=evicted.append)
        for t in range(5):
            flight.record(span_event(float(t)))
        assert flight.recorded == 5
        assert flight.evicted == 2
        assert [event.t for event in evicted] == [0.0, 1.0]
        assert [event.t for event in flight.events(SPAN)] == [2.0, 3.0, 4.0]

    def test_virtual_time_order_is_mandatory(self):
        flight = FlightRecorder(capacity=4)
        flight.record_span(2.0, object())
        with pytest.raises(ValueError, match="virtual-time order"):
            flight.record_span(1.0, object())
        flight.record_energy(5.0, object())
        with pytest.raises(ValueError, match="virtual-time order"):
            flight.record_energy(4.0, object())

    def test_kinds_ring_independently(self):
        flight = FlightRecorder(capacity=2)
        flight.record(span_event(1.0))
        flight.record(StreamEvent(ENERGY, 0.5, "power.package", 9.0))
        # energy behind spans is fine: per-kind clocks
        assert flight.counts()[SPAN] == 1
        assert flight.counts()[ENERGY] == 1

    def test_raw_entries_wrapped_lazily(self):
        class FakeSpan:
            name = "stage:weave"
            duration_s = 0.25

        flight = FlightRecorder(capacity=4)
        flight.record_span(1.0, FakeSpan())
        events = flight.events(SPAN)
        assert events[0].name == "stage:weave"
        assert events[0].value == 0.25
        assert isinstance(events[0], StreamEvent)

    def test_snapshot_covers_every_kind(self):
        flight = FlightRecorder(capacity=4)
        window = flight.snapshot()
        assert len(window) == len(EVENT_KINDS)
        assert all(isinstance(events, list) for events in window.values())


# -- incident bundles ---------------------------------------------------------


@dataclasses.dataclass
class FakeRecord:
    timestamp: float
    time_s: float
    power_w: float
    energy_j: float = 0.0
    compiler: str = "-O3"
    threads: int = 4
    binding: str = "close"
    cluster: str = ""
    state: str = "Throughput"

    def __post_init__(self):
        self.energy_j = self.power_w * self.time_s

    def as_dict(self):
        return dataclasses.asdict(self)


def burning_engine(power_w=50.0, budget_w=10.0, steps=60):
    """An engine fed synthetic invocations that burn the budget."""
    policy = AlertPolicy(
        budgets=(EnergyBudget("cap", power_w=budget_w),),
        burn_short_s=0.1,
        burn_long_s=0.5,
        flight_capacity=32,
    )
    engine = AlertEngine(policy=policy, kernel="fake")
    step = 0.05
    for i in range(steps):
        end = (i + 1) * step
        engine.observe_invocation(
            "fake", FakeRecord(timestamp=end, time_s=step, power_w=power_w)
        )
    return engine


class TestAlertEngine:
    def test_burn_alert_fires_and_opens_incident(self):
        engine = burning_engine()
        assert len(engine.alerts) >= 1
        burn = [a for a in engine.alerts if a.detector == "burn_rate"]
        assert burn and burn[0].name == "budget_burn:cap"
        assert len(engine.incidents) == len(engine.alerts)

    def test_quiet_workload_stays_quiet(self):
        engine = burning_engine(power_w=5.0, budget_w=10.0)
        assert engine.alerts == []
        assert engine.incidents == []

    def test_cooldown_suppresses_duplicate_alerts(self):
        policy = AlertPolicy(
            budgets=(
                EnergyBudget("a", power_w=10.0),
                EnergyBudget("b", power_w=10.0),
            ),
            burn_short_s=0.1,
            burn_long_s=0.5,
            cooldown_s=10.0,
        )
        engine = AlertEngine(policy=policy)
        step = 0.05
        for i in range(100):
            end = (i + 1) * step
            engine.observe_invocation(
                "fake", FakeRecord(timestamp=end, time_s=step, power_w=50.0)
            )
        names = [a.name for a in engine.alerts]
        assert len(names) == len(set(names))  # one alert per budget
        assert engine.suppressed == 0  # distinct names never collide

    def test_flight_ring_receives_spans_via_sink(self):
        class FakeSpan:
            name = "stage:weave"
            duration_s = 0.01

        engine = AlertEngine()
        engine.bus.advance(1.0)
        engine.on_span(FakeSpan())
        assert engine.flight.counts()[SPAN] == 1
        assert engine.flight.events(SPAN)[0].t == 1.0

    def test_bundle_schema_and_validation(self, tmp_path):
        engine = burning_engine()
        bundle = engine.incidents[0]
        document = bundle.as_dict()
        assert document["schema"] == INCIDENT_SCHEMA
        assert document["incident_id"].startswith("inc-")
        path = bundle.write(tmp_path)
        summary = validate_incident(path)
        assert summary["incident_id"] == bundle.incident_id
        assert validate_file(path) == summary
        assert load_incident(path)["kernel"] == "fake"
        assert incident_paths(tmp_path) == [path]

    def test_fingerprint_stable_across_runs(self):
        first = burning_engine().incidents[0]
        second = burning_engine().incidents[0]
        assert first.incident_id == second.incident_id
        assert first.as_dict() == second.as_dict()

    def test_fingerprint_sensitive_to_window(self):
        first = burning_engine().incidents[0]
        other = burning_engine(power_w=51.0).incidents[0]
        assert first.incident_id != other.incident_id

    def test_attribution_names_offender_and_domain(self):
        engine = burning_engine()
        attribution = engine.incidents[0].attribution
        assert attribution["domain"] == "package"
        assert "kernel.execute" in attribution["span"]
        assert attribution["operating_point"]["threads"] == 4
        assert attribution["energy_share"] == pytest.approx(1.0)

    def test_cusum_fires_on_power_level_shift(self):
        policy = AlertPolicy(cusum_min_samples=10)
        engine = AlertEngine(policy=policy)
        step = 0.05
        t = 0.0
        for _ in range(10):
            t += step
            engine.observe_invocation(
                "fake", FakeRecord(timestamp=t, time_s=step, power_w=50.0)
            )
        for _ in range(60):
            t += step
            engine.observe_invocation(
                "fake", FakeRecord(timestamp=t, time_s=step, power_w=80.0)
            )
        cusum = [a for a in engine.alerts if a.detector == "cusum"]
        assert cusum and cusum[0].name == "power_changepoint:package"
        assert "shifted up" in cusum[0].message

    def test_alert_counters_exported(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        policy = AlertPolicy(
            budgets=(EnergyBudget("cap", power_w=10.0),),
            burn_short_s=0.1,
            burn_long_s=0.5,
        )
        engine = AlertEngine(policy=policy, metrics=metrics)
        step = 0.05
        for i in range(60):
            engine.observe_invocation(
                "fake",
                FakeRecord(timestamp=(i + 1) * step, time_s=step, power_w=50.0),
            )
        text = metrics.prometheus_text() if hasattr(metrics, "prometheus_text") else ""
        fired = metrics.counter(
            "socrates_alerts_total",
            help="alerts fired by the streaming detectors",
            labels={"alert": "budget_burn:cap", "severity": "page"},
        )
        assert fired.value >= 1


class TestAttribution:
    def test_empty_window_falls_back_to_alert_name(self):
        attribution = attribute_incident(
            {"name": "budget_burn:cap", "message": "m"}, {"energy": []}
        )
        assert attribution["span"] == "budget_burn:cap"
        assert attribution["domain"] == "package"

    def test_argmax_is_deterministic_under_ties(self):
        window = {
            "energy": [
                {
                    "payload": {
                        "compiler": "-O2",
                        "threads": 1,
                        "binding": "spread",
                        "cluster": "",
                        "energy_j": 5.0,
                    }
                },
                {
                    "payload": {
                        "compiler": "-O3",
                        "threads": 2,
                        "binding": "close",
                        "cluster": "",
                        "energy_j": 5.0,
                    }
                },
            ]
        }
        first = attribute_incident({"name": "a"}, window)
        second = attribute_incident({"name": "a"}, window)
        assert first["span"] == second["span"]

    def test_fingerprint_ignores_wall_clock_span_payloads(self):
        base = {
            "kernel": "k",
            "alert": {"name": "a"},
            "window": {
                "spans": [
                    {
                        "name": "stage",
                        "t": 1.0,
                        "payload": {"duration_s": 0.5, "attributes": {}},
                    }
                ]
            },
        }
        other = json.loads(json.dumps(base))
        other["window"]["spans"][0]["payload"]["duration_s"] = 0.9
        assert incident_fingerprint(base) == incident_fingerprint(other)


# -- the null-object discipline ----------------------------------------------


def quick_workload(obs):
    flow = SocratesToolflow(dse_repetitions=1, thread_counts=[1, 2], obs=obs)
    app = flow.build(load("mvt")).adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    scenario = Scenario(
        phases=[Phase(0.0, "Thr/W^2"), Phase(0.5, "Throughput")], duration_s=1.0
    )
    return scenario.run(app)


class TestNullObjectDiscipline:
    def test_alerts_none_unless_enabled(self):
        assert Observability().alerts is None
        assert Observability(enabled=False).alerts is None
        assert Observability(alerting=True).alerts is not None

    def test_seeded_run_identical_with_alerting_on_or_off(self):
        policy = AlertPolicy(
            budgets=(EnergyBudget("cap", power_w=40.0),),
            burn_short_s=0.1,
            burn_long_s=0.5,
        )
        plain = quick_workload(Observability())
        alerting = quick_workload(Observability(alerting=True, alert_policy=policy))
        assert plain == alerting


# -- the overhead probe -------------------------------------------------------


class TestAlertOverheadProbe:
    def test_accounts_and_clamps(self):
        import time

        from repro.bench.measure import AlertOverheadProbe

        engine = AlertEngine()
        probe = AlertOverheadProbe(engine, clamp_s=0.001).install()

        class FakeSpan:
            name = "s"
            duration_s = 0.0

        engine.bus.advance(1.0)
        engine.on_span(FakeSpan())
        assert probe.hooks == 1
        assert 0.0 < probe.hook_s <= 0.001

        # a hook that stalls past the clamp is billed the clamp only
        original = engine.flight._append_span

        def slow(t, entry):
            time.sleep(0.005)
            original(t, entry)

        engine.flight._append_span = slow
        before = probe.hook_s
        engine.observe_invocation(
            "fake", FakeRecord(timestamp=2.0, time_s=1.0, power_w=1.0)
        )
        # observe_invocation does not call _append_span, so use the
        # recorded totals to check the clamp arithmetic instead
        assert probe.hook_s - before <= 0.0011

    def test_overhead_ratio(self):
        from repro.bench.measure import AlertOverheadProbe

        probe = AlertOverheadProbe(AlertEngine())
        probe.hook_s = 0.5
        assert probe.overhead_ratio(2.0) == pytest.approx(2.0 / 1.5)
        assert probe.overhead_ratio(0.25) == float("inf")
