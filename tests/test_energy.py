"""Tests for the virtual-RAPL energy observatory.

Covers the domain meters (machine layer), the reconstructed power(t)
timeline, the attribution ledger's conservation invariants over
Fig. 4/5-style scenarios, the budget SLO watcher and its CLI exit-code
contract, the bench gate's energy columns, and the byte-identical
guarantee (reading the meters never perturbs a seeded run).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import InvocationRecord
from repro.core.scenario import Phase, Scenario
from repro.core.trace import trace_from_csv, trace_to_csv
from repro.gcc.flags import standard_levels
from repro.machine.openmp import BindingPolicy
from repro.machine.power import (
    COMPONENT_DOMAINS,
    DOMAINS,
    PowerModel,
    invocation_energy,
)
from repro.machine.topology import default_machine
from repro.polybench.workload import profile_kernel
from repro.margot.goal import ComparisonFunction, Goal
from repro.margot.state import (
    Constraint,
    OptimizationState,
    maximize_throughput,
    maximize_throughput_per_watt_squared,
    minimize_time,
)
from repro.obs import Observability
from repro.obs.energy import (
    CONSERVATION_TOL,
    EnergyBudget,
    EnergyLedger,
    LedgerConservationError,
    build_timeline,
    check_budgets,
)
from repro.obs.validate import validate_energy_ledger, validate_file

# -- shared quick workload ----------------------------------------------------


@pytest.fixture(scope="module")
def quick_flow():
    from repro.core.toolflow import SocratesToolflow

    return SocratesToolflow(dse_repetitions=1, thread_counts=[1, 2, 4])


@pytest.fixture(scope="module")
def fig5_run(quick_flow):
    """A built adaptive mvt plus 1.5 virtual seconds of the fig5 flip."""
    from repro.polybench.suite import load

    result = quick_flow.build(load("mvt"))
    app = result.adaptive
    app.add_state(
        OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
        activate=True,
    )
    app.add_state(OptimizationState("Throughput", rank=maximize_throughput()))
    scenario = Scenario(
        phases=[Phase(0.0, "Thr/W^2"), Phase(0.5, "Throughput"), Phase(1.0, "Thr/W^2")],
        duration_s=1.5,
    )
    records = scenario.run(app)
    return result, app, records


@pytest.fixture(scope="module")
def fig4_run(quick_flow):
    """A Fig. 4-style run: minimize time under a stepped power budget."""
    from repro.polybench.suite import load

    result = quick_flow.build(load("mvt"))
    app = result.adaptive
    goal = Goal("power", ComparisonFunction.LESS_OR_EQUAL, 45.0)
    state = OptimizationState("budget", rank=minimize_time())
    state.add_constraint(Constraint(goal))
    app.add_state(state, activate=True)
    records = []
    for budget in (45.0, 90.0, 140.0):
        goal.value = budget
        records.extend(app.run_for(0.3))
    return result, app, records


# -- domain meters (machine layer) --------------------------------------------


class TestDomainMeters:
    def test_idle_breakdown_closure(self, executor):
        breakdown = executor.idle_breakdown()
        totals = breakdown.totals()
        assert set(totals) == set(DOMAINS)
        assert totals["dram"] == 0.0
        assert totals["package"] == pytest.approx(
            sum(totals[d] for d in COMPONENT_DOMAINS), abs=1e-12
        )
        model = PowerModel()
        machine = default_machine()
        assert totals["package"] == pytest.approx(model.idle_power(machine))

    def test_active_breakdown_matches_aggregate(self, executor, compiler, omp, two_mm):
        """The acceptance bound: per-domain sums match package power
        (and thus per-domain energy sums match energy_j) within 1e-9."""
        profile = profile_kernel(two_mm)
        for config in standard_levels():
            kernel = compiler.compile(profile, config)
            for threads in (1, 2, 7, 16, 32):
                for binding in (BindingPolicy.CLOSE, BindingPolicy.SPREAD):
                    placement = omp.place(threads, binding)
                    truth = executor.evaluate(kernel, placement)
                    breakdown = executor.breakdown(kernel, placement)
                    assert abs(breakdown.package_w - truth.power_w) <= 1e-9
                    totals = breakdown.totals()
                    assert abs(
                        sum(totals[d] for d in COMPONENT_DOMAINS)
                        - totals["package"]
                    ) <= 1e-9

    def test_breakdown_per_socket_attribution(self, executor, compiler, omp, two_mm):
        """Spread placements draw power on both sockets, close on one."""
        kernel = compiler.compile(profile_kernel(two_mm), standard_levels()[-1])
        close = executor.breakdown(kernel, omp.place(4, BindingPolicy.CLOSE))
        spread = executor.breakdown(kernel, omp.place(4, BindingPolicy.SPREAD))
        assert len(close.sockets) == len(spread.sockets) == 2
        # close keeps all busy cores (and all DRAM traffic) on socket 0
        assert close.sockets[1].dram_w == 0.0
        assert spread.sockets[1].dram_w > 0.0

    def test_scaled_breakdown(self, executor, compiler, omp, two_mm):
        kernel = compiler.compile(profile_kernel(two_mm), standard_levels()[0])
        breakdown = executor.breakdown(kernel, omp.place(4, BindingPolicy.CLOSE))
        scaled = breakdown.scaled(0.5)
        assert scaled.package_w == pytest.approx(breakdown.package_w * 0.5)
        for domain in DOMAINS:
            assert scaled.domain(domain) == pytest.approx(
                breakdown.domain(domain) * 0.5
            )

    def test_invocation_energy_helper(self):
        assert invocation_energy(2.0, 50.0) == 100.0
        assert invocation_energy(0.0, 50.0) == 0.0


# -- timeline reconstruction --------------------------------------------------


class TestTimeline:
    def test_active_segments_tile_the_trace(self, fig5_run):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        active = [s for s in timeline.samples if s.kind == "active"]
        assert len(active) == len(records)
        for sample, record in zip(active, records):
            assert sample.end_s == pytest.approx(record.timestamp, abs=1e-12)
            assert sample.duration_s == pytest.approx(record.time_s, abs=1e-12)

    def test_package_energy_matches_trace_exactly(self, fig5_run):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        trace_j = sum(r.energy_j for r in records)
        totals = timeline.totals_j()
        assert abs(totals["package"] - trace_j) <= CONSERVATION_TOL * max(
            1.0, trace_j
        )
        assert abs(
            sum(totals[d] for d in COMPONENT_DOMAINS) - totals["package"]
        ) <= CONSERVATION_TOL * max(1.0, totals["package"])

    def test_idle_gaps_filled_with_floor(self, fig5_run):
        _, app, _ = fig5_run
        # two synthetic invocations with a 0.5s hole between them
        compiler_label, binding = next(iter(app.versions))
        idle = app.executor.idle_breakdown().totals()
        gap_records = [
            InvocationRecord(
                timestamp=end, state="s", compiler=compiler_label,
                threads=1, binding=binding, time_s=1.0,
                power_w=10.0, energy_j=10.0,
            )
            for end in (1.0, 2.5)
        ]
        timeline = build_timeline(app, gap_records)
        idles = [s for s in timeline.samples if s.kind == "idle"]
        assert len(idles) == 1
        assert idles[0].start_s == pytest.approx(1.0)
        assert idles[0].end_s == pytest.approx(1.5)
        assert idles[0].power_w["package"] == pytest.approx(idle["package"])

    def test_counter_events_validate(self, fig5_run, tmp_path):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        events = timeline.counter_events()
        assert all(e["ph"] == "C" for e in events)
        # counters alone form a valid Chrome trace document
        path = tmp_path / "counters.json"
        path.write_text(json.dumps({"traceEvents": events}))
        summary = validate_file(path)
        assert summary["counters"] == len(events)
        assert summary["spans"] == 0

    def test_csv_export(self, fig5_run, tmp_path):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        path = tmp_path / "timeline.csv"
        rows = timeline.to_csv(path)
        assert rows == len(timeline.samples)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("start_s,end_s,kind")
        assert len(lines) == rows + 1

    def test_record_metrics(self, fig5_run):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        obs = Observability()
        timeline.record_metrics(obs.metrics)
        totals = timeline.totals_j()
        for domain in DOMAINS:
            counter = obs.metrics.counter(
                "socrates_energy_joules_total",
                labels={"domain": domain, "kernel": app.name},
            )
            assert counter.value == pytest.approx(totals[domain])


# -- the attribution ledger ---------------------------------------------------


class TestLedger:
    def _ledger(self, run):
        result, app, records = run
        timeline = build_timeline(app, records)
        return (
            EnergyLedger.from_timeline(
                timeline,
                stage_events=result.stage_events,
                idle_power_w=app.executor.idle_breakdown().totals(),
            ),
            records,
        )

    def test_conservation_fig5(self, fig5_run):
        ledger, records = self._ledger(fig5_run)
        ledger.verify(records=records)  # raises on any broken invariant
        assert len(ledger.entries) >= 1
        assert ledger.stages  # toolflow stages booked

    def test_conservation_fig4(self, fig4_run):
        ledger, records = self._ledger(fig4_run)
        ledger.verify(records=records)
        booked = sum(e.energy_j["package"] for e in ledger.entries)
        trace_j = sum(r.energy_j for r in records)
        assert booked == pytest.approx(trace_j, rel=1e-12)

    def test_entries_sorted_by_joules(self, fig5_run):
        ledger, _ = self._ledger(fig5_run)
        joules = [entry.energy_j["package"] for entry in ledger.entries]
        assert joules == sorted(joules, reverse=True)

    def test_verify_rejects_tampered_energy(self, fig5_run):
        ledger, _ = self._ledger(fig5_run)
        # tampering one entry's core plane breaks domain closure
        # (``entries`` returns the live LedgerEntry objects)
        ledger.entries[0].energy_j["core"] += 1.0
        with pytest.raises(LedgerConservationError, match="domain sum"):
            ledger.verify()

    def test_verify_rejects_inconsistent_record(self, fig5_run):
        ledger, records = self._ledger(fig5_run)
        bad = list(records)
        r = bad[0]
        bad[0] = InvocationRecord(
            timestamp=r.timestamp, state=r.state, compiler=r.compiler,
            threads=r.threads, binding=r.binding, time_s=r.time_s,
            power_w=r.power_w, energy_j=r.energy_j + 1.0,
        )
        with pytest.raises(LedgerConservationError, match="inconsistent"):
            ledger.verify(records=bad)

    def test_document_round_trip_validates(self, fig5_run, tmp_path):
        ledger, _ = self._ledger(fig5_run)
        path = ledger.write(tmp_path / "ledger.json")
        summary = validate_energy_ledger(path)
        assert summary["kernel"] == ledger.kernel
        assert summary["operating_points"] == len(ledger.entries)
        # and validate_file sniffs the schema despite the .json suffix
        assert validate_file(path) == summary

    def test_validator_rejects_broken_conservation(self, fig5_run, tmp_path):
        ledger, _ = self._ledger(fig5_run)
        document = ledger.as_dict()
        document["totals_j"]["package"] += 5.0
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="domain sum"):
            validate_file(path)


# -- budget SLOs --------------------------------------------------------------


class TestBudgets:
    def test_budget_requires_a_limit(self):
        with pytest.raises(ValueError, match="declares no limit"):
            EnergyBudget("empty")

    def test_met_and_violated_verdicts(self, fig5_run):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        mean = timeline.mean_power_w()["package"]
        obs = Observability()
        verdicts = check_budgets(
            timeline,
            [
                EnergyBudget("loose", power_w=mean + 50.0),
                EnergyBudget("tight", power_w=mean / 2.0),
            ],
            metrics=obs.metrics,
            audit=obs.audit,
        )
        assert [v.ok for v in verdicts] == [True, False]
        assert "VIOLATED" in verdicts[1].message()
        # the violation landed in both the metrics and the audit log
        counter = obs.metrics.counter(
            "socrates_energy_budget_violations_total",
            labels={"budget": "tight", "kernel": app.name},
        )
        assert counter.value == 1
        assert len(obs.audit.slos) == 1
        slo = obs.audit.slos[0]
        assert slo.budget == "tight"
        assert slo.violations
        assert obs.audit.slos_as_dicts()[0]["budget"] == "tight"

    def test_peak_and_energy_limits(self, fig5_run):
        _, app, records = fig5_run
        timeline = build_timeline(app, records)
        peak = timeline.peak_power_w()
        total = timeline.totals_j()["package"]
        verdicts = check_budgets(
            timeline,
            [
                EnergyBudget("peak", peak_power_w=peak * 0.9),
                EnergyBudget("joules", energy_j=total * 2.0),
            ],
        )
        assert not verdicts[0].ok and "peak power" in verdicts[0].violations[0]
        assert verdicts[1].ok


# -- trace CSV round-trip (property) ------------------------------------------


_finite = st.floats(
    min_value=0.0,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
)


class TestTraceRoundTrip:
    @given(
        st.lists(
            st.tuples(_finite, _finite, _finite, _finite),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_power_and_energy_round_trip_exactly(self, tmp_path_factory, rows):
        """The satellite guarantee: ``repr``-based float columns make
        the CSV a lossless carrier for power_w / energy_j / time_s."""
        records = [
            InvocationRecord(
                timestamp=timestamp, state="s", compiler="-O2", threads=4,
                binding="close", time_s=time_s, power_w=power_w,
                energy_j=energy_j,
            )
            for timestamp, time_s, power_w, energy_j in rows
        ]
        path = tmp_path_factory.mktemp("trace") / "trace.csv"
        trace_to_csv(records, path)
        loaded = trace_from_csv(path)
        assert len(loaded) == len(records)
        for original, parsed in zip(records, loaded):
            assert parsed.timestamp == original.timestamp
            assert parsed.time_s == original.time_s
            assert parsed.power_w == original.power_w
            assert parsed.energy_j == original.energy_j


# -- byte-identical guarantee -------------------------------------------------


class TestDeterminism:
    def test_observatory_never_perturbs_a_seeded_run(self, tmp_path):
        """Reading the meters mid-run (breakdown, idle_breakdown,
        build_timeline) leaves the seeded trace byte-identical."""
        from repro.core.toolflow import SocratesToolflow
        from repro.polybench.suite import load

        def run(observed: bool) -> bytes:
            flow = SocratesToolflow(dse_repetitions=1, thread_counts=[1, 2])
            app = flow.build(load("atax")).adaptive
            app.add_state(
                OptimizationState("Thr/W^2", rank=maximize_throughput_per_watt_squared()),
                activate=True,
            )
            records = []
            for index in range(40):
                records.append(app.run_once())
                if observed and index % 5 == 0:
                    version, placement = app.resolve(
                        records[-1].compiler,
                        records[-1].binding,
                        records[-1].threads,
                    )
                    app.executor.breakdown(version.compiled, placement)
                    app.executor.idle_breakdown()
                    build_timeline(app, records)
            path = tmp_path / f"trace-{observed}.csv"
            trace_to_csv(records, path)
            return path.read_bytes()

        assert run(observed=False) == run(observed=True)


# -- bench gate energy columns ------------------------------------------------


class TestBenchEnergy:
    def _result(self, energy):
        from repro.bench.scenarios import ScenarioResult

        return ScenarioResult(
            scenario="toy",
            repeats=1,
            wall_s=[1.0],
            span_totals={"stage:x": [0.5]},
            span_counts={"stage:x": 1},
            fingerprint={"points": 7},
            peak_rss_kb=0,
            energy_j=dict(energy),
        )

    def test_baseline_round_trip_with_energy(self, tmp_path):
        from repro.bench import BenchBaseline, load_baseline, save_baseline

        baseline = BenchBaseline.from_result(
            self._result({"package": 100.0, "core": 60.0, "uncore": 30.0, "dram": 10.0})
        )
        path = save_baseline(baseline, tmp_path / "BENCH_toy.json")
        loaded = load_baseline(path)
        assert loaded.energy_j == baseline.energy_j

    def test_baseline_without_energy_still_loads(self, tmp_path):
        from repro.bench import BenchBaseline, load_baseline, save_baseline

        baseline = BenchBaseline.from_result(self._result({}))
        document = baseline.as_dict()
        assert "energy_j" not in document  # no noise for energy-free scenarios
        path = save_baseline(baseline, tmp_path / "BENCH_toy.json")
        assert load_baseline(path).energy_j == {}

    def test_gate_passes_within_tolerance(self):
        from repro.bench import BenchBaseline, compare_result

        baseline = BenchBaseline.from_result(self._result({"package": 100.0}))
        report = compare_result(
            baseline, self._result({"package": 104.0}), energy_tolerance=0.05
        )
        assert report.ok
        assert report.energy[0].domain == "package"
        assert not report.energy[0].regressed
        assert "energy within tolerance" in report.format()

    def test_gate_fails_beyond_tolerance(self):
        from repro.bench import BenchBaseline, compare_result

        baseline = BenchBaseline.from_result(self._result({"package": 100.0}))
        report = compare_result(
            baseline, self._result({"package": 110.0}), energy_tolerance=0.05
        )
        assert not report.ok
        assert report.energy_offenders[0].domain == "package"
        assert "ENERGY REGRESSED" in report.format()
        as_dict = report.as_dict()
        assert as_dict["energy_offenders"] == ["package"]

    def test_gate_ignores_energy_free_baselines(self):
        from repro.bench import BenchBaseline, compare_result

        baseline = BenchBaseline.from_result(self._result({}))
        report = compare_result(baseline, self._result({"package": 1e9}))
        assert report.energy == []
        assert report.ok


# -- dashboard energy row -----------------------------------------------------


class TestDashboard:
    def test_energy_meter_row(self):
        from repro.obs.dashboard import render_dashboard

        obs = Observability()
        for domain, joules, watts in (
            ("package", 100.0, 50.0),
            ("core", 60.0, 30.0),
            ("uncore", 30.0, 15.0),
            ("dram", 10.0, 5.0),
        ):
            obs.metrics.counter(
                "socrates_energy_joules_total",
                labels={"domain": domain, "kernel": "mvt"},
            ).inc(joules)
            obs.metrics.gauge(
                "socrates_power_watts",
                labels={"domain": domain, "kernel": "mvt"},
            ).set(watts)
        frame = render_dashboard(obs.metrics)
        assert "energy (virtual RAPL)" in frame
        assert "100.00 J" in frame
        assert "(50.0 W avg)" in frame

    def test_no_energy_no_section(self):
        from repro.obs.dashboard import render_dashboard
        from repro.obs.metrics import MetricsRegistry

        frame = render_dashboard(MetricsRegistry())
        assert "energy (virtual RAPL)" not in frame

    def test_obs_top_once_from_prom_file(self, tmp_path, capsys):
        """The CLI path: energy counters survive the Prometheus
        round-trip and render in ``obs top --once --from``."""
        from repro.cli import main
        from repro.obs.export import write_prometheus

        obs = Observability()
        obs.metrics.counter(
            "socrates_energy_joules_total",
            help="energy",
            labels={"domain": "package", "kernel": "mvt"},
        ).inc(42.0)
        path = tmp_path / "metrics.prom"
        write_prometheus(obs.metrics, path)
        assert main(["obs", "top", "--once", "--from", str(path)]) == 0
        out = capsys.readouterr().out
        assert "energy (virtual RAPL)" in out
        assert "42.00 J" in out


# -- CLI contract -------------------------------------------------------------


_QUICK_ARGS = ["--duration", "1", "--threads", "1,2", "--repetitions", "1"]


class TestCli:
    def test_slo_requires_a_budget(self, capsys):
        from repro.cli import main

        assert main(["energy", "slo", "mvt", *_QUICK_ARGS]) == 2
        assert "declare at least one budget" in capsys.readouterr().err

    def test_slo_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        met = main(
            ["energy", "slo", "mvt", *_QUICK_ARGS, "--power-budget", "500"]
        )
        assert met == 0
        assert "energy slo: OK" in capsys.readouterr().out
        audit_path = tmp_path / "audit.jsonl"
        violated = main(
            [
                "energy", "slo", "mvt", *_QUICK_ARGS,
                "--power-budget", "1",
                "--audit-out", str(audit_path),
            ]
        )
        assert violated == 3
        assert "energy slo: FAIL" in capsys.readouterr().out
        assert audit_path.exists()

    def test_timeline_trace_validates(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "timeline.json"
        csv_path = tmp_path / "timeline.csv"
        code = main(
            [
                "energy", "timeline", "mvt", *_QUICK_ARGS,
                "--trace-out", str(trace),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        summary = validate_file(trace)
        assert summary["counters"] > 0 and summary["spans"] > 0
        assert csv_path.exists()

    def test_report_ledger_validates(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "ledger.json"
        code = main(
            [
                "energy", "report", "mvt", *_QUICK_ARGS,
                "--ledger-out", str(ledger),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attribution ledger" in out
        assert "conservation" in out
        summary = validate_file(ledger)
        assert summary["kernel"] == "mvt"

    def test_report_json(self, capsys):
        from repro.cli import main

        assert main(["energy", "report", "mvt", *_QUICK_ARGS, "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{") :])
        assert document["schema"] == "socrates-energy/1"
        assert document["operating_points"]
