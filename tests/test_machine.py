"""Tests for the simulated machine: topology, OpenMP placement, power,
and the executor model's qualitative behaviour."""

import pytest

from repro.gcc.compiler import Compiler
from repro.gcc.flags import Flag, FlagConfiguration, OptLevel
from repro.machine.executor import ExecutionResult, MachineExecutor
from repro.machine.openmp import BindingPolicy, OpenMPRuntime
from repro.machine.power import PowerModel, RaplMeter
from repro.machine.topology import Machine, default_machine
from repro.polybench.suite import load
from repro.polybench.workload import profile_kernel


@pytest.fixture(scope="module")
def k2mm(compiler):
    return compiler.compile(profile_kernel(load("2mm")), FlagConfiguration(OptLevel.O2))


@pytest.fixture(scope="module")
def katax(compiler):
    return compiler.compile(profile_kernel(load("atax")), FlagConfiguration(OptLevel.O2))


@pytest.fixture(scope="module")
def kseidel(compiler):
    return compiler.compile(
        profile_kernel(load("seidel-2d")), FlagConfiguration(OptLevel.O2)
    )


class TestTopology:
    def test_paper_platform(self, machine):
        assert machine.sockets == 2
        assert machine.physical_cores == 16
        assert machine.logical_cpus == 32

    def test_cpu_enumeration(self, machine):
        cpus = machine.cpus()
        assert len(cpus) == 32
        assert cpus[0].socket == 0 and cpus[-1].socket == 1

    def test_core_places(self, machine):
        places = machine.core_places()
        assert len(places) == 16
        assert places[0] == (0, 0)
        assert places[8] == (1, 0)


class TestPlacement:
    def test_close_fills_one_socket_first(self, omp):
        placement = omp.place(8, BindingPolicy.CLOSE)
        assert placement.sockets_used == (0,)

    def test_close_overflows_to_second_socket(self, omp):
        placement = omp.place(9, BindingPolicy.CLOSE)
        assert placement.sockets_used == (0, 1)

    def test_spread_uses_both_sockets_immediately(self, omp):
        placement = omp.place(2, BindingPolicy.SPREAD)
        assert placement.sockets_used == (0, 1)

    def test_spread_balances_threads(self, omp):
        placement = omp.place(8, BindingPolicy.SPREAD)
        per_socket = placement.threads_per_socket()
        assert per_socket[0] == per_socket[1] == 4

    def test_no_smt_until_cores_exhausted(self, omp):
        for threads in (1, 8, 16):
            for policy in BindingPolicy:
                assert omp.place(threads, policy).smt_pairs == 0

    def test_smt_pairs_beyond_16(self, omp):
        placement = omp.place(20, BindingPolicy.CLOSE)
        assert placement.smt_pairs == 4
        assert placement.cores_used == 16

    def test_full_machine(self, omp):
        placement = omp.place(32, BindingPolicy.SPREAD)
        assert placement.cores_used == 16
        assert placement.smt_pairs == 16

    def test_single_thread(self, omp):
        placement = omp.place(1, BindingPolicy.CLOSE)
        assert placement.num_threads == 1
        assert placement.cores_used == 1

    def test_rejects_zero_threads(self, omp):
        with pytest.raises(ValueError):
            omp.place(0, BindingPolicy.CLOSE)

    def test_rejects_oversubscription(self, omp):
        with pytest.raises(ValueError):
            omp.place(33, BindingPolicy.CLOSE)

    def test_max_threads_matches_paper_knob(self, omp):
        # TN ranges "between 1 and the number of logical cores"
        assert omp.max_threads() == 32


class TestPowerModel:
    def test_idle_below_45w_budget_floor(self, machine):
        # Figure 4 sweeps budgets from 45 W: a single-thread config
        # must be feasible there, so idle must sit below it
        model = PowerModel()
        assert model.idle_power(machine) < 45.0

    def test_active_power_grows_with_cores(self, machine, omp):
        model = PowerModel()
        small = model.active_power(
            machine, omp.place(2, BindingPolicy.CLOSE), 1.0, 1.0, 0.1
        )
        large = model.active_power(
            machine, omp.place(16, BindingPolicy.CLOSE), 1.0, 1.0, 0.1
        )
        assert large > small

    def test_full_load_within_paper_envelope(self, machine, omp):
        # Figure 5 tops out around 145 W: a full 32-thread team on a
        # hot vectorized kernel with moderate DRAM activity
        model = PowerModel()
        peak = model.active_power(
            machine, omp.place(32, BindingPolicy.SPREAD), 1.12, 1.0, 0.4
        )
        assert 125.0 <= peak <= 155.0

    def test_memory_stalls_reduce_power(self, machine, omp):
        model = PowerModel()
        placement = omp.place(16, BindingPolicy.CLOSE)
        busy = model.active_power(machine, placement, 1.0, 1.0, 0.2)
        stalled = model.active_power(machine, placement, 1.0, 0.5, 0.2)
        assert stalled < busy

    def test_rapl_meter_noise_is_small_and_seeded(self):
        meter_a = RaplMeter(PowerModel(), seed=1)
        meter_b = RaplMeter(PowerModel(), seed=1)
        values_a = [meter_a.measure(100.0) for _ in range(20)]
        values_b = [meter_b.measure(100.0) for _ in range(20)]
        assert values_a == values_b
        assert all(90.0 < value < 110.0 for value in values_a)


class TestExecutor:
    def test_noise_free_is_deterministic(self, executor, omp, k2mm):
        placement = omp.place(8, BindingPolicy.CLOSE)
        a = executor.evaluate(k2mm, placement)
        b = executor.evaluate(k2mm, placement)
        assert a.time_s == b.time_s and a.power_w == b.power_w

    def test_noisy_run_wobbles_around_truth(self, machine, omp, k2mm):
        executor = MachineExecutor(machine, seed=42)
        placement = omp.place(8, BindingPolicy.CLOSE)
        truth = executor.evaluate(k2mm, placement)
        samples = [executor.run(k2mm, placement) for _ in range(30)]
        mean_time = sum(s.time_s for s in samples) / len(samples)
        assert abs(mean_time - truth.time_s) / truth.time_s < 0.05

    def test_compute_bound_scales_with_threads(self, executor, omp, k2mm):
        t1 = executor.evaluate(k2mm, omp.place(1, BindingPolicy.CLOSE)).time_s
        t8 = executor.evaluate(k2mm, omp.place(8, BindingPolicy.CLOSE)).time_s
        t16 = executor.evaluate(k2mm, omp.place(16, BindingPolicy.CLOSE)).time_s
        # near-linear until the single-socket bandwidth starts to bind
        assert 4.0 < t1 / t8 <= 8.5
        assert t16 < t8

    def test_smt_gains_are_sublinear(self, executor, omp, k2mm):
        t16 = executor.evaluate(k2mm, omp.place(16, BindingPolicy.CLOSE)).time_s
        t32 = executor.evaluate(k2mm, omp.place(32, BindingPolicy.CLOSE)).time_s
        assert t32 < t16  # HT still helps...
        assert t32 > t16 / 2  # ...but far from 2x

    def test_memory_bound_kernel_prefers_spread(self, executor, omp, katax):
        # atax streams a 32 MB matrix: spread doubles bandwidth and LLC
        close = executor.evaluate(katax, omp.place(8, BindingPolicy.CLOSE)).time_s
        spread = executor.evaluate(katax, omp.place(8, BindingPolicy.SPREAD)).time_s
        assert spread < close

    def test_dependence_limited_kernel_scales_poorly(self, executor, omp, kseidel):
        t1 = executor.evaluate(kseidel, omp.place(1, BindingPolicy.CLOSE)).time_s
        t16 = executor.evaluate(kseidel, omp.place(16, BindingPolicy.CLOSE)).time_s
        speedup = t1 / t16
        assert speedup < 8.0  # nowhere near the 16x of 2mm

    def test_power_grows_with_threads(self, executor, omp, k2mm):
        p1 = executor.evaluate(k2mm, omp.place(1, BindingPolicy.CLOSE)).power_w
        p16 = executor.evaluate(k2mm, omp.place(16, BindingPolicy.CLOSE)).power_w
        assert p16 > p1 + 30.0

    def test_energy_is_time_times_power(self, executor, omp, k2mm):
        result = executor.evaluate(k2mm, omp.place(4, BindingPolicy.CLOSE))
        assert result.energy_j == pytest.approx(result.time_s * result.power_w)

    def test_throughput_metrics(self):
        result = ExecutionResult(time_s=0.5, power_w=100.0, energy_j=50.0)
        assert result.throughput == pytest.approx(2.0)
        assert result.throughput_per_watt_sq == pytest.approx(2.0 / 100.0**2)

    def test_fork_join_penalizes_many_regions(self, executor, omp, compiler):
        # jacobi-2d runs 1000 parallel regions per invocation: its
        # speedup at 32 threads must trail a 2-region kernel of similar
        # parallelism
        kj = compiler.compile(
            profile_kernel(load("jacobi-2d")), FlagConfiguration(OptLevel.O2)
        )
        t1 = executor.evaluate(kj, omp.place(1, BindingPolicy.CLOSE)).time_s
        t32 = executor.evaluate(kj, omp.place(32, BindingPolicy.SPREAD)).time_s
        fork_join_share = 1000 * 2e-5 / t32
        assert t1 / t32 < 25.0 or fork_join_share < 0.5

    def test_reseed_restarts_noise_stream(self, machine, omp, k2mm):
        executor = MachineExecutor(machine, seed=9)
        placement = omp.place(4, BindingPolicy.CLOSE)
        first = executor.run(k2mm, placement).time_s
        executor.reseed(9)
        again = executor.run(k2mm, placement).time_s
        assert first == again
